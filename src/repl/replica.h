#ifndef SHOREMT_REPL_REPLICA_H_
#define SHOREMT_REPL_REPLICA_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "io/volume.h"
#include "log/log_storage.h"
#include "obs/metrics_registry.h"
#include "repl/replay_pool.h"
#include "sm/storage_manager.h"

namespace shoremt::repl {

/// A log-shipping replica: receives the primary's durable log over a
/// stream socket, appends it verbatim to its own LogStorage, and applies
/// it through a partitioned parallel ReplayPool while continuously
/// publishing a `replayed_lsn` visibility horizon. Reads are served
/// through the attached StorageManager's normal Session path
/// (`replica.sm()->OpenSession()`); a read-only transaction at the
/// horizon sees exactly the committed prefix up to it.
///
/// Apply discipline (commit-gated deferred replay): heap DML and heap
/// CLRs are buffered per transaction and released to the partition queues
/// only at that transaction's kCommit — an aborted transaction's heap
/// records are simply discarded, so the replica never applies (and never
/// needs to undo) uncommitted row state. Structure records — page
/// formats, B-tree inserts/deletes/splits, allocation, store/catalog
/// metadata — are applied immediately in log order: structure is
/// redo-only on the primary (never undone on abort), and a later
/// committed transaction may legitimately build on an earlier
/// uncommitted transaction's structure (e.g. insert into a page the
/// other formatted).
///
/// Promotion (the primary died): Promote() stops the stream, drains the
/// replay pool, truncates the received log at the last complete record,
/// and reopens the engine with OpenMode::kPromote — analysis finds
/// transactions with no commit record, undoes their structure records
/// (their heap records were never applied), and formally aborts them.
/// The promoted manager then serves reads AND writes: it is the new
/// primary, and its log is a valid restart log.
class Replica {
 public:
  struct Options {
    /// Base configuration for the attached (and later promoted) manager.
    sm::StorageOptions storage;
    /// Replay partitions / worker threads.
    size_t replay_workers = 4;
  };

  /// `volume` and `storage` are the replica's durable state, owned by the
  /// caller (alive across Promote). `storage` is usually empty (fresh
  /// replica) but may be a previously received prefix (reconnect).
  Replica(io::Volume* volume, log::LogStorage* storage, Options opts);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Attaches the engine (OpenMode::kReplicaAttach: no recovery, no
  /// checkpoint daemon), sends kHello{local size} on `fd` (owned by the
  /// caller), and spawns the receive thread.
  Status Start(int fd);
  /// Stops the receive thread (idempotent; also called by Promote).
  void Stop();

  /// Read (and post-promotion write) access; never null after a
  /// successful Start. Swapped for the promoted manager by Promote().
  sm::StorageManager* sm() { return sm_.get(); }

  /// Fails over to primary; see class comment. After Ok, promoted() is
  /// true and sm() is the new read-write manager.
  Status Promote();
  bool promoted() const { return promoted_; }

  // --- observability --------------------------------------------------------

  /// Every committed record with end LSN <= this has been applied.
  uint64_t replayed_lsn() const;
  /// Waits for the horizon to reach `lsn`; false on timeout or error.
  bool WaitReplayed(uint64_t lsn, int timeout_ms);
  /// Bytes durably received from the primary.
  uint64_t received_bytes() const { return storage_->size(); }
  /// True once the primary's side of the socket closed.
  bool stream_ended() const {
    return eof_.load(std::memory_order_acquire);
  }
  /// Blocks until the stream ends (primary closed/crashed) or timeout.
  bool WaitStreamEnd(int timeout_ms);
  /// Sticky receive/replay error.
  Status error() const;

  uint64_t frames_applied() const {
    return frames_applied_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_streamed() const {
    return bytes_streamed_.load(std::memory_order_relaxed);
  }

  /// Registers replica counters (segments applied, bytes streamed, replay
  /// batches, replayed-LSN lag gauge) on the ATTACHED manager's registry.
  /// Any ProfilingThread over it must stop before Promote() (promotion
  /// replaces the manager and its registry).
  void RegisterMetrics();

 private:
  Status ReceiveLoop();
  /// Parses complete records in [parse_pos_, storage size) and feeds the
  /// commit-gating dispatcher.
  Status ProcessNewBytes();
  void SetError(Status st);

  io::Volume* volume_;
  log::LogStorage* storage_;
  Options opts_;

  std::unique_ptr<sm::StorageManager> sm_;
  /// Guards pool_ swaps (Promote) against the metrics-source reader.
  mutable std::mutex pool_mutex_;
  std::unique_ptr<ReplayPool> pool_;

  int fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> eof_{false};
  std::mutex eof_mutex_;
  std::condition_variable eof_cv_;
  bool promoted_ = false;

  /// Receive-thread state: next unparsed offset and the commit gate —
  /// per-transaction buffered heap records awaiting kCommit.
  uint64_t parse_pos_ = 0;
  std::unordered_map<TxnId, std::vector<std::pair<log::LogRecord, Lsn>>>
      pending_;

  std::atomic<uint64_t> frames_applied_{0};
  std::atomic<uint64_t> bytes_streamed_{0};

  mutable std::mutex error_mutex_;
  Status error_ = Status::Ok();
  std::atomic<bool> has_error_{false};
};

}  // namespace shoremt::repl

#endif  // SHOREMT_REPL_REPLICA_H_
