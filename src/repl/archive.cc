#include "repl/archive.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "log/log_record.h"

namespace shoremt::repl {

Result<std::unique_ptr<RestoredInstance>> RestoreToLsn(
    const std::string& archive_dir, const log::LogStorage* live, Lsn target,
    sm::StorageOptions opts) {
  SHOREMT_ASSIGN_OR_RETURN(LogArchive archive, LogArchive::Open(archive_dir));

  auto inst = std::make_unique<RestoredInstance>();
  size_t segment_bytes = archive.empty()
                             ? (live != nullptr ? live->segment_bytes() : 0)
                             : archive.segments().front().capacity;
  inst->log = std::make_unique<log::LogStorage>(/*append_latency_ns=*/0,
                                                segment_bytes);

  // Reassemble the stream: the archive must start at offset 0 (recycling
  // archives oldest-first, so a non-zero base means segments were freed
  // before archiving was switched on — the prefix is unrecoverable).
  if (!archive.empty() && archive.base_offset() != 0) {
    return Status::IOError("archive starts at offset " +
                           std::to_string(archive.base_offset()) +
                           ", log prefix was recycled unarchived");
  }
  std::vector<uint8_t> buf;
  if (!archive.empty()) {
    SHOREMT_RETURN_NOT_OK(
        archive.Read(0, archive.end_offset(), &buf));
    SHOREMT_RETURN_NOT_OK(inst->log->Append(buf));
  }
  if (live != nullptr && live->size() > archive.end_offset()) {
    buf.clear();
    // ReadFrom fails below the live reclamation horizon, which catches a
    // gap between archive end and the first live segment.
    SHOREMT_RETURN_NOT_OK(live->ReadFrom(archive.end_offset(), &buf));
    SHOREMT_RETURN_NOT_OK(inst->log->Append(buf));
  }
  if (inst->log->size() == 0) {
    return Status::InvalidArgument("nothing to restore: empty archive + log");
  }

  // Cut after the last record whose END LSN is <= target. Records are
  // length-prefixed; the reassembled stream starts at offset 0, so a
  // simple forward walk finds the boundary.
  std::vector<uint8_t> stream = inst->log->Snapshot();
  uint64_t keep = 0;
  uint64_t pos = 0;
  while (pos + 4 <= stream.size()) {
    uint32_t len;
    std::memcpy(&len, stream.data() + pos, 4);
    if (len < log::kLogRecordHeaderSize || pos + len > stream.size()) break;
    if (pos + len + 1 > target.value) break;  // end LSN past the target
    pos += len;
    keep = pos;
  }
  if (keep == 0) {
    return Status::InvalidArgument("restore target " +
                                   std::to_string(target.value) +
                                   " precedes the first archived record");
  }
  SHOREMT_RETURN_NOT_OK(inst->log->TruncateTo(keep));

  inst->volume = std::make_unique<io::MemVolume>();
  opts.open_mode = sm::OpenMode::kRestore;
  // Never archive from (or into) the source archive again.
  opts.log.archive_dir.clear();
  SHOREMT_ASSIGN_OR_RETURN(
      inst->sm,
      sm::StorageManager::Open(opts, inst->volume.get(), inst->log.get()));
  return inst;
}

}  // namespace shoremt::repl
