#include "repl/archive.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "log/log_record.h"

namespace shoremt::repl {

Result<LogArchive> LogArchive::Open(const std::string& dir) {
  LogArchive archive;
  archive.dir_ = dir;
  std::string manifest = dir + "/MANIFEST";
  FILE* f = std::fopen(manifest.c_str(), "r");
  if (f == nullptr) return archive;  // no archive yet — empty, not an error
  char line[4096];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == '\n' || line[0] == '\0') continue;
    unsigned long long base, length, capacity;
    char file[1024];
    if (std::sscanf(line, "v1 %llu %llu %llu %1023s", &base, &length,
                    &capacity, file) != 4) {
      std::fclose(f);
      return Status::Corruption("malformed archive MANIFEST line: " +
                                std::string(line));
    }
    ArchivedSegment seg;
    seg.base = base;
    seg.length = length;
    seg.capacity = capacity;
    seg.file = file;
    archive.segments_.push_back(std::move(seg));
  }
  std::fclose(f);
  std::sort(archive.segments_.begin(), archive.segments_.end(),
            [](const ArchivedSegment& a, const ArchivedSegment& b) {
              return a.base < b.base;
            });
  for (size_t i = 1; i < archive.segments_.size(); ++i) {
    const auto& prev = archive.segments_[i - 1];
    if (archive.segments_[i].base != prev.base + prev.length) {
      return Status::Corruption("archive MANIFEST has a gap at offset " +
                                std::to_string(prev.base + prev.length));
    }
  }
  return archive;
}

const ArchivedSegment* LogArchive::SegmentAt(uint64_t offset) const {
  // First segment with base > offset, then step back.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), offset,
      [](uint64_t off, const ArchivedSegment& s) { return off < s.base; });
  if (it == segments_.begin()) return nullptr;
  --it;
  if (offset >= it->base + it->length) return nullptr;
  return &*it;
}

Status LogArchive::Read(uint64_t offset, size_t len,
                        std::vector<uint8_t>* out) const {
  out->clear();
  out->reserve(len);
  uint64_t pos = offset;
  while (out->size() < len) {
    const ArchivedSegment* seg = SegmentAt(pos);
    if (seg == nullptr) {
      return Status::IOError("archive does not cover log offset " +
                             std::to_string(pos));
    }
    uint64_t in_seg = pos - seg->base;
    size_t want = std::min<uint64_t>(len - out->size(), seg->length - in_seg);
    std::string path = dir_ + "/" + seg->file;
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::IOError("cannot open archived segment " + path);
    }
    size_t old = out->size();
    out->resize(old + want);
    bool ok = std::fseek(f, static_cast<long>(in_seg), SEEK_SET) == 0 &&
              std::fread(out->data() + old, 1, want, f) == want;
    std::fclose(f);
    if (!ok) {
      return Status::IOError("short read from archived segment " + path);
    }
    pos += want;
  }
  return Status::Ok();
}

Result<std::unique_ptr<RestoredInstance>> RestoreToLsn(
    const std::string& archive_dir, const log::LogStorage* live, Lsn target,
    sm::StorageOptions opts) {
  SHOREMT_ASSIGN_OR_RETURN(LogArchive archive, LogArchive::Open(archive_dir));

  auto inst = std::make_unique<RestoredInstance>();
  size_t segment_bytes = archive.empty()
                             ? (live != nullptr ? live->segment_bytes() : 0)
                             : archive.segments().front().capacity;
  inst->log = std::make_unique<log::LogStorage>(/*append_latency_ns=*/0,
                                                segment_bytes);

  // Reassemble the stream: the archive must start at offset 0 (recycling
  // archives oldest-first, so a non-zero base means segments were freed
  // before archiving was switched on — the prefix is unrecoverable).
  if (!archive.empty() && archive.base_offset() != 0) {
    return Status::IOError("archive starts at offset " +
                           std::to_string(archive.base_offset()) +
                           ", log prefix was recycled unarchived");
  }
  std::vector<uint8_t> buf;
  if (!archive.empty()) {
    SHOREMT_RETURN_NOT_OK(
        archive.Read(0, archive.end_offset(), &buf));
    SHOREMT_RETURN_NOT_OK(inst->log->Append(buf));
  }
  if (live != nullptr && live->size() > archive.end_offset()) {
    buf.clear();
    // ReadFrom fails below the live reclamation horizon, which catches a
    // gap between archive end and the first live segment.
    SHOREMT_RETURN_NOT_OK(live->ReadFrom(archive.end_offset(), &buf));
    SHOREMT_RETURN_NOT_OK(inst->log->Append(buf));
  }
  if (inst->log->size() == 0) {
    return Status::InvalidArgument("nothing to restore: empty archive + log");
  }

  // Cut after the last record whose END LSN is <= target. Records are
  // length-prefixed; the reassembled stream starts at offset 0, so a
  // simple forward walk finds the boundary.
  std::vector<uint8_t> stream = inst->log->Snapshot();
  uint64_t keep = 0;
  uint64_t pos = 0;
  while (pos + 4 <= stream.size()) {
    uint32_t len;
    std::memcpy(&len, stream.data() + pos, 4);
    if (len < log::kLogRecordHeaderSize || pos + len > stream.size()) break;
    if (pos + len + 1 > target.value) break;  // end LSN past the target
    pos += len;
    keep = pos;
  }
  if (keep == 0) {
    return Status::InvalidArgument("restore target " +
                                   std::to_string(target.value) +
                                   " precedes the first archived record");
  }
  SHOREMT_RETURN_NOT_OK(inst->log->TruncateTo(keep));

  inst->volume = std::make_unique<io::MemVolume>();
  opts.open_mode = sm::OpenMode::kRestore;
  // Never archive from (or into) the source archive again.
  opts.log.archive_dir.clear();
  SHOREMT_ASSIGN_OR_RETURN(
      inst->sm,
      sm::StorageManager::Open(opts, inst->volume.get(), inst->log.get()));
  return inst;
}

}  // namespace shoremt::repl
