#ifndef SHOREMT_REPL_REPLAY_POOL_H_
#define SHOREMT_REPL_REPLAY_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "log/log_record.h"
#include "sm/storage_manager.h"

namespace shoremt::repl {

/// Partitioned parallel redo: log records are hash-partitioned by page id
/// across N replay workers, so two records touching the same page always
/// land in the same FIFO queue (per-page order preserved) while records of
/// different pages replay concurrently. A single dispatcher thread feeds
/// Dispatch/PublishBarrier; workers drain their queue in batches.
///
/// The pool publishes a `replayed_lsn` visibility horizon through epoch
/// barriers: PublishBarrier(h) enqueues a marker into EVERY partition, and
/// when the last worker consumes its marker, every record dispatched
/// before the barrier has been applied, so the horizon advances to `h`.
/// Readers above the horizon see a consistent committed prefix.
///
/// Two modes:
///  - kStrict: records arrive in LSN order (a recovery-style scan); the
///    page-LSN idempotence guard stays on. Used by the equivalence test
///    to prove parallel redo is byte-identical to sequential redo.
///  - kDeferred: records arrive in COMMIT order (the replica's
///    commit-gated dispatcher), which breaks per-page LSN monotonicity;
///    applies are forced and the page LSN only ratchets upward.
class ReplayPool {
 public:
  enum class Mode { kStrict, kDeferred };

  /// `sm` must outlive the pool. `workers` is clamped to >= 1.
  ReplayPool(sm::StorageManager* sm, size_t workers, Mode mode);
  /// Stops and joins the workers; queued records still unapplied at
  /// destruction are dropped (callers that need them applied Drain first).
  ~ReplayPool();

  ReplayPool(const ReplayPool&) = delete;
  ReplayPool& operator=(const ReplayPool&) = delete;

  // --- dispatcher side (single thread) -------------------------------------

  /// Routes one record to its page's partition queue; blocks while that
  /// queue is full. After a sticky error records are accepted and dropped
  /// (the stream keeps flowing so the dispatcher never deadlocks; the
  /// error is surfaced through error() / Drain()).
  void Dispatch(log::LogRecord rec, Lsn end);
  /// Publishes an epoch barrier: once every worker passes it, replayed_lsn
  /// advances to max(current, horizon).
  void PublishBarrier(uint64_t horizon);
  /// Barrier at the highest dispatched end-LSN + wait until it is applied.
  /// Returns the sticky error, if any.
  Status Drain();

  // --- observers (any thread) ----------------------------------------------

  /// Every committed record with end <= this LSN has been applied.
  uint64_t replayed_lsn() const {
    return replayed_.load(std::memory_order_acquire);
  }
  /// Waits until replayed_lsn >= lsn (or error/timeout); true on success.
  bool WaitReplayed(uint64_t lsn, int timeout_ms);
  /// First apply failure (sticky).
  Status error() const;
  /// Worker batch pops (the kReplReplayBatches metric).
  uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  /// Records applied across all workers.
  uint64_t applied() const { return applied_.load(std::memory_order_relaxed); }

 private:
  /// One queue entry: a record to apply or an epoch barrier marker.
  struct Task {
    bool barrier = false;
    uint64_t barrier_id = 0;   ///< barrier only
    log::LogRecord rec;        ///< record only
    Lsn end;                   ///< record only
  };

  /// Per-partition bounded FIFO.
  struct Partition {
    std::mutex mutex;
    std::condition_variable nonempty;
    std::condition_variable nonfull;
    std::deque<Task> queue;
  };

  void WorkerLoop(size_t idx);
  void Push(size_t idx, Task task);
  void BarrierArrived(uint64_t id);

  sm::StorageManager* sm_;
  Mode mode_;
  size_t nworkers_;
  /// Per-partition queue bound: deep enough to ride out skewed page
  /// distributions, small enough to bound replica memory when replay
  /// falls behind the stream.
  static constexpr size_t kQueueCapacity = 4096;

  std::vector<std::unique_ptr<Partition>> partitions_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};

  /// Barrier accounting: id -> {horizon, workers yet to pass}.
  struct BarrierState {
    uint64_t horizon = 0;
    size_t remaining = 0;
  };
  std::mutex barrier_mutex_;
  std::unordered_map<uint64_t, BarrierState> barriers_;
  uint64_t next_barrier_id_ = 1;       ///< Dispatcher thread only.
  std::atomic<uint64_t> max_dispatched_end_{0};

  std::atomic<uint64_t> replayed_{0};
  std::condition_variable replayed_cv_;  ///< Waits on barrier_mutex_.

  mutable std::mutex error_mutex_;
  Status error_ = Status::Ok();
  std::atomic<bool> has_error_{false};

  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> applied_{0};
};

}  // namespace shoremt::repl

#endif  // SHOREMT_REPL_REPLAY_POOL_H_
