#include "repl/replay_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace shoremt::repl {

ReplayPool::ReplayPool(sm::StorageManager* sm, size_t workers, Mode mode)
    : sm_(sm), mode_(mode), nworkers_(std::max<size_t>(1, workers)) {
  partitions_.reserve(nworkers_);
  for (size_t i = 0; i < nworkers_; ++i) {
    partitions_.push_back(std::make_unique<Partition>());
  }
  workers_.reserve(nworkers_);
  for (size_t i = 0; i < nworkers_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ReplayPool::~ReplayPool() {
  stop_.store(true, std::memory_order_release);
  for (auto& p : partitions_) {
    std::lock_guard<std::mutex> lk(p->mutex);
    p->nonempty.notify_all();
    p->nonfull.notify_all();
  }
  for (auto& w : workers_) w.join();
}

void ReplayPool::Push(size_t idx, Task task) {
  Partition& p = *partitions_[idx];
  std::unique_lock<std::mutex> lk(p.mutex);
  p.nonfull.wait(lk, [&] {
    return p.queue.size() < kQueueCapacity ||
           stop_.load(std::memory_order_acquire);
  });
  if (stop_.load(std::memory_order_acquire)) return;
  p.queue.push_back(std::move(task));
  p.nonempty.notify_one();
}

void ReplayPool::Dispatch(log::LogRecord rec, Lsn end) {
  uint64_t prev = max_dispatched_end_.load(std::memory_order_relaxed);
  while (end.value > prev &&
         !max_dispatched_end_.compare_exchange_weak(
             prev, end.value, std::memory_order_relaxed)) {
  }
  Task t;
  t.rec = std::move(rec);
  t.end = end;
  Push(t.rec.page % nworkers_, std::move(t));
}

void ReplayPool::PublishBarrier(uint64_t horizon) {
  uint64_t id;
  {
    std::lock_guard<std::mutex> lk(barrier_mutex_);
    id = next_barrier_id_++;
    barriers_[id] = BarrierState{horizon, nworkers_};
  }
  for (size_t i = 0; i < nworkers_; ++i) {
    Task t;
    t.barrier = true;
    t.barrier_id = id;
    Push(i, std::move(t));
  }
}

Status ReplayPool::Drain() {
  uint64_t target =
      std::max(max_dispatched_end_.load(std::memory_order_acquire),
               replayed_.load(std::memory_order_acquire));
  PublishBarrier(target);
  std::unique_lock<std::mutex> lk(barrier_mutex_);
  replayed_cv_.wait(lk, [&] {
    return replayed_.load(std::memory_order_acquire) >= target ||
           stop_.load(std::memory_order_acquire);
  });
  lk.unlock();
  return error();
}

bool ReplayPool::WaitReplayed(uint64_t lsn, int timeout_ms) {
  std::unique_lock<std::mutex> lk(barrier_mutex_);
  return replayed_cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms), [&] {
    return replayed_.load(std::memory_order_acquire) >= lsn ||
           has_error_.load(std::memory_order_acquire) ||
           stop_.load(std::memory_order_acquire);
  }) && replayed_.load(std::memory_order_acquire) >= lsn;
}

Status ReplayPool::error() const {
  if (!has_error_.load(std::memory_order_acquire)) return Status::Ok();
  std::lock_guard<std::mutex> lk(error_mutex_);
  return error_;
}

void ReplayPool::BarrierArrived(uint64_t id) {
  std::lock_guard<std::mutex> lk(barrier_mutex_);
  auto it = barriers_.find(id);
  if (it == barriers_.end()) return;
  if (--it->second.remaining > 0) return;
  // Last worker through: everything dispatched before this barrier is
  // applied. Horizons are published in ascending order but barriers can
  // complete out of order across partitions, hence the max.
  uint64_t h = it->second.horizon;
  barriers_.erase(it);
  uint64_t prev = replayed_.load(std::memory_order_relaxed);
  while (h > prev && !replayed_.compare_exchange_weak(
                         prev, h, std::memory_order_release)) {
  }
  replayed_cv_.notify_all();
}

void ReplayPool::WorkerLoop(size_t idx) {
  Partition& p = *partitions_[idx];
  const bool force = mode_ == Mode::kDeferred;
  std::deque<Task> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(p.mutex);
      p.nonempty.wait(lk, [&] {
        return !p.queue.empty() || stop_.load(std::memory_order_acquire);
      });
      if (p.queue.empty()) return;  // stop with nothing left
      batch.swap(p.queue);
      p.nonfull.notify_all();
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    for (Task& t : batch) {
      if (t.barrier) {
        BarrierArrived(t.barrier_id);
        continue;
      }
      // After a sticky error keep consuming (so the dispatcher and
      // barriers never wedge) but stop mutating pages.
      if (has_error_.load(std::memory_order_acquire)) continue;
      Status st = sm_->ApplyRedo(t.rec, t.end, force);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lk(error_mutex_);
        if (!has_error_.load(std::memory_order_relaxed)) {
          error_ = st;
          has_error_.store(true, std::memory_order_release);
        }
        std::lock_guard<std::mutex> blk(barrier_mutex_);
        replayed_cv_.notify_all();
      } else {
        applied_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    batch.clear();
  }
}

}  // namespace shoremt::repl
