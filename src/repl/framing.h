#ifndef SHOREMT_REPL_FRAMING_H_
#define SHOREMT_REPL_FRAMING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace shoremt::repl {

/// Wire format: every frame is `u32 len | u8 type | payload`, where `len`
/// counts the type byte plus the payload (so len >= 1). Length-prefixed
/// framing is the first line of defense against torn shipments: a short
/// read mid-frame is Corruption, never a silently-truncated record batch.
/// Payload layouts (all integers little-endian u64):
///
///   kHello      replica → shipper   next_offset
///       "start shipping at this absolute log byte" (the replica's current
///       receive-log size; non-zero on reconnect).
///   kSegment    shipper → replica   chunk_start | seg_base | seg_capacity
///                                   | bytes
///       Bytes [chunk_start, chunk_start + n) of the durable log; the
///       frame COMPLETES the sealed segment [seg_base, seg_base +
///       seg_capacity). The replica validates chunk_start against its own
///       size and the geometry against the frame length — a mismatch is a
///       torn or misordered shipment and triggers kResend.
///   kTailDelta  shipper → replica   chunk_start | bytes
///       Durable bytes of the still-open tail segment (no seal geometry
///       to validate yet beyond contiguity).
///   kAck        replica → shipper   received_offset | replayed_lsn
///       Flow/lag feedback: bytes durably received and the replay
///       pool's published visibility horizon.
///   kResend     replica → shipper   from_offset
///       "Your last frame didn't line up; rewind to this offset."
enum class FrameType : uint8_t {
  kHello = 1,
  kSegment = 2,
  kTailDelta = 3,
  kAck = 4,
  kResend = 5,
};

/// Upper bound on a frame payload: anything larger than this in a length
/// prefix is garbage (a segment is at most a few MiB), so the reader can
/// reject it before allocating.
inline constexpr size_t kMaxFramePayload = 64u << 20;

struct Frame {
  FrameType type = FrameType::kHello;
  std::vector<uint8_t> payload;
};

/// Appends a little-endian u64 to `out`.
void PutU64(std::vector<uint8_t>* out, uint64_t v);
/// Reads a little-endian u64 at `*pos`, advancing it; false if short.
bool GetU64(std::span<const uint8_t> data, size_t* pos, uint64_t* v);

/// Writes one frame (blocking, handles partial writes; never raises
/// SIGPIPE — a dead peer surfaces as IOError).
Status WriteFrame(int fd, FrameType type, std::span<const uint8_t> payload);
/// Convenience: frame whose payload is `head` (u64s) followed by `bytes`.
Status WriteFrame(int fd, FrameType type, std::span<const uint64_t> head,
                  std::span<const uint8_t> bytes);

/// Reads one frame (blocking). Clean EOF at a frame boundary is NotFound
/// (peer closed); EOF mid-frame or an insane length prefix is Corruption.
Status ReadFrame(int fd, Frame* out);

/// True when `fd` becomes readable within `timeout_ms` (0 = immediate
/// poll; also returns true on error/hangup so the caller's read surfaces
/// the condition).
bool WaitReadable(int fd, int timeout_ms);

/// A connected AF_UNIX stream pair (loopback transport for tests, benches
/// and fork()ed two-process demos).
Status MakeSocketPair(int fds[2]);

}  // namespace shoremt::repl

#endif  // SHOREMT_REPL_FRAMING_H_
