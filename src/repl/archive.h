#ifndef SHOREMT_REPL_ARCHIVE_H_
#define SHOREMT_REPL_ARCHIVE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "io/volume.h"
#include "log/log_archive.h"
#include "log/log_storage.h"
#include "sm/options.h"
#include "sm/storage_manager.h"

namespace shoremt::repl {

/// The archive reader moved down into the log layer (log/log_archive.h)
/// so the storage manager's media auto-repair can replay archived
/// records without an sm → repl dependency cycle; these aliases keep
/// the original repl-side spelling working.
using ArchivedSegment = log::ArchivedSegment;
using LogArchive = log::LogArchive;

/// A point-in-time-restored engine instance. Declaration order matters:
/// the manager is destroyed first (it borrows the log and volume).
struct RestoredInstance {
  std::unique_ptr<log::LogStorage> log;
  std::unique_ptr<io::MemVolume> volume;
  std::unique_ptr<sm::StorageManager> sm;
};

/// Point-in-time restore: reconstructs the full log stream — archived
/// segments first, then the live storage's surviving bytes — truncates it
/// after the last record whose end LSN is <= `target`, and runs a full
/// restart (OpenMode::kRestore: redo from LSN 1 over a fresh volume) on
/// the result. Transactions still in flight at `target` are rolled back
/// by restart undo, exactly as if the primary had crashed at that LSN.
///
/// `live` may be null (restore purely from the archive — e.g. the primary
/// host is gone but its tail had been recycled-and-archived). `opts` is
/// the restored instance's configuration; its log.archive_dir is cleared
/// (the restored instance must never append to the source archive).
Result<std::unique_ptr<RestoredInstance>> RestoreToLsn(
    const std::string& archive_dir, const log::LogStorage* live, Lsn target,
    sm::StorageOptions opts);

}  // namespace shoremt::repl

#endif  // SHOREMT_REPL_ARCHIVE_H_
