#ifndef SHOREMT_REPL_ARCHIVE_H_
#define SHOREMT_REPL_ARCHIVE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "io/volume.h"
#include "log/log_storage.h"
#include "sm/options.h"
#include "sm/storage_manager.h"

namespace shoremt::repl {

/// One archived log segment, as recorded by a MANIFEST line
/// (`v1 <base> <length> <capacity> <file>`, written by
/// LogStorage::Recycle when LogOptions::archive_dir is set).
struct ArchivedSegment {
  uint64_t base = 0;      ///< Absolute log byte offset of the first byte.
  uint64_t length = 0;    ///< Bytes in the archive file.
  uint64_t capacity = 0;  ///< The segment's configured capacity.
  std::string file;       ///< File name, relative to the archive dir.
};

/// Read-side view of a segment archive directory: parses the MANIFEST and
/// serves byte ranges out of the per-segment files. Consumers: the
/// shipper's below-horizon fallback (a replica attaching after segments
/// were recycled) and RestoreToLsn.
class LogArchive {
 public:
  /// Opens `dir`. A missing directory or MANIFEST yields an EMPTY archive
  /// (archiving may simply not have recycled anything yet); a malformed
  /// MANIFEST line is Corruption.
  static Result<LogArchive> Open(const std::string& dir);

  const std::vector<ArchivedSegment>& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }
  /// First archived byte (0 when empty).
  uint64_t base_offset() const {
    return segments_.empty() ? 0 : segments_.front().base;
  }
  /// One past the last archived byte (0 when empty).
  uint64_t end_offset() const {
    return segments_.empty() ? 0
                             : segments_.back().base + segments_.back().length;
  }

  /// Finds the archived segment containing absolute offset; null if the
  /// offset is not covered.
  const ArchivedSegment* SegmentAt(uint64_t offset) const;

  /// Reads [offset, offset + len) — which may span archive files — into
  /// `out` (cleared first). IOError when the range is not fully covered.
  Status Read(uint64_t offset, size_t len, std::vector<uint8_t>* out) const;

 private:
  std::string dir_;
  std::vector<ArchivedSegment> segments_;  ///< Sorted by base, contiguous.
};

/// A point-in-time-restored engine instance. Declaration order matters:
/// the manager is destroyed first (it borrows the log and volume).
struct RestoredInstance {
  std::unique_ptr<log::LogStorage> log;
  std::unique_ptr<io::MemVolume> volume;
  std::unique_ptr<sm::StorageManager> sm;
};

/// Point-in-time restore: reconstructs the full log stream — archived
/// segments first, then the live storage's surviving bytes — truncates it
/// after the last record whose end LSN is <= `target`, and runs a full
/// restart (OpenMode::kRestore: redo from LSN 1 over a fresh volume) on
/// the result. Transactions still in flight at `target` are rolled back
/// by restart undo, exactly as if the primary had crashed at that LSN.
///
/// `live` may be null (restore purely from the archive — e.g. the primary
/// host is gone but its tail had been recycled-and-archived). `opts` is
/// the restored instance's configuration; its log.archive_dir is cleared
/// (the restored instance must never append to the source archive).
Result<std::unique_ptr<RestoredInstance>> RestoreToLsn(
    const std::string& archive_dir, const log::LogStorage* live, Lsn target,
    sm::StorageOptions opts);

}  // namespace shoremt::repl

#endif  // SHOREMT_REPL_ARCHIVE_H_
