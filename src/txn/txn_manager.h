#ifndef SHOREMT_TXN_TXN_MANAGER_H_
#define SHOREMT_TXN_TXN_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "common/status.h"
#include "common/types.h"
#include "lock/lock_manager.h"
#include "log/log_manager.h"
#include "txn/transaction.h"

namespace shoremt::txn {

/// Transaction manager knobs; defaults = Shore-MT "final". Lock
/// escalation configuration moved into lock::LockOptions — the
/// transaction's TxnLockList handle carries the per-store counters now.
struct TxnOptions {
  /// Keep the oldest active transaction id in an atomically-readable
  /// variable, updated by committing transactions, instead of scanning the
  /// active list under its mutex on every query (§7.3).
  bool oldest_txn_cache = true;
};

struct TxnStats {
  std::atomic<uint64_t> begun{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> oldest_scans{0};
};

/// A transaction's final private counters, reported to the caller at
/// Commit/Abort because the Transaction object is destroyed there —
/// includes the commit/abort records and any rollback CLRs.
struct TxnCounters {
  uint64_t log_bytes = 0;
  uint64_t lock_waits = 0;
  /// Lock requests served from the transaction's private cache (never
  /// touched the shared table).
  uint64_t lock_cache_hits = 0;
};

/// Handle to an asynchronously committed transaction, returned by
/// TxnManager::CommitAsync once the commit record sits in the log buffer
/// and every lock has been released (early lock release). The transaction
/// is *committed* but not yet *durable*: acknowledgment arrives when the
/// flush pipeline's durable LSN passes `lsn` (TxnManager::Wait /
/// Session::Wait / Session::WaitAll).
///
/// Early lock release is safe because any transaction that observes this
/// one's writes must lock them after the locks dropped, so its own commit
/// record necessarily lands at a higher LSN — the log device makes
/// prefixes durable, so a dependent can never be acknowledged before its
/// predecessor.
struct CommitToken {
  /// Flush target: the commit record's end LSN. Null for a read-only
  /// transaction (nothing to wait on).
  Lsn lsn;
  TxnId txn = kInvalidTxnId;
  /// Final counters, available immediately (the Transaction is gone).
  TxnCounters counters;
  /// Completion state: set once durability has been confirmed (true from
  /// the start for read-only transactions or if the group flush already
  /// passed `lsn`).
  bool durable = false;
  /// The log the commit record went to (set by CommitAsync) — lets
  /// TryWait poll durability without a manager round-trip. Non-owning:
  /// the token must not outlive the storage manager.
  log::LogManager* log = nullptr;

  /// Non-blocking durability poll: true once the commit is durable (and
  /// marks the token so). Never parks — servers harvest acks between
  /// requests instead of parking a thread per commit. A sticky pipeline
  /// error also returns true so the poll loop terminates, but the token
  /// stays non-durable: check `durable` after a true return, and resolve
  /// the error with TxnManager::Wait / Session::Wait (immediate in that
  /// state), which report it.
  bool TryWait() {
    if (durable) return true;
    if (lsn.IsNull() || log == nullptr || log->IsDurable(lsn)) {
      durable = true;
      return true;
    }
    return !log->pipeline_error().ok();
  }
};

/// Coordinates transaction lifecycle (§2.2.5): begin/commit/abort, strict
/// two-phase locking via the lock manager, rollback through the WAL undo
/// chain, and checkpoint generation.
class TxnManager {
 public:
  /// Applies the inverse of `rec` to the database and logs a CLR; wired up
  /// by the storage manager (it owns the buffer pool).
  using UndoFn = std::function<Status(Transaction*, const log::LogRecord&)>;

  TxnManager(log::LogManager* log, lock::LockManager* locks,
             TxnOptions options);

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  void SetUndoApplier(UndoFn undo) { undo_ = std::move(undo); }

  /// Starts a transaction; the pointer stays valid until Commit/Abort.
  Transaction* Begin();

  /// Compatibility alias: TxnCounters moved to namespace scope so
  /// CommitToken can carry one; old spelling keeps working.
  using TxnCounters = txn::TxnCounters;

  /// Commits synchronously: a thin CommitAsync + Wait composition. The
  /// Transaction object is destroyed; on success its final counters are
  /// written to `counters_out` (if non-null). Note the failure split: an
  /// error *before* the token is issued (commit-record append failed)
  /// leaves the transaction active and the caller must Abort; an error
  /// from the durability wait arrives after the transaction is gone and
  /// only means the acknowledgment could not be given.
  Status Commit(Transaction* txn, TxnCounters* counters_out = nullptr);

  /// Commits asynchronously: appends the commit record, releases every
  /// lock immediately (early lock release — see CommitToken), retires the
  /// transaction, and submits the commit LSN to the log's group-commit
  /// pipeline without waiting for the flush. The Transaction object is
  /// destroyed on success; on failure it stays active (caller aborts).
  Result<CommitToken> CommitAsync(Transaction* txn);

  /// Blocks until `token`'s commit is durable (or the flush pipeline
  /// carries a sticky error); marks the token durable on success.
  Status Wait(CommitToken* token);

  /// Aborts: undoes the txn's updates via the WAL chain (logging CLRs),
  /// then releases locks and destroys the object, reporting final
  /// counters like Commit.
  ///
  /// Locking moved to the transaction's handle: use
  /// `txn->locks.LockRecord(...)` / `txn->locks.LockStore(...)` (the
  /// TxnLockList carries the held-mode cache and escalation counters).
  Status Abort(Transaction* txn, TxnCounters* counters_out = nullptr);

  /// Oldest active transaction id (kInvalidTxnId when none). With the
  /// cache enabled this is one atomic load; otherwise it scans the active
  /// list under the mutex — the §7.3 bottleneck.
  TxnId OldestActiveTxn() const;

  /// Writes a checkpoint record. `redo_lsn_source` supplies the dirty-page
  /// low-water mark: the blocking variant scans the buffer pool while
  /// holding the transaction list still; the decoupled variant reads the
  /// dirty-page table's incremental minimum (§7.7). The body's redo_lsn is
  /// that value floored by the minimum begin LSN over active transactions,
  /// which makes it simultaneously the redo scan start AND a safe
  /// log-recycling horizon (no live undo chain below it). `augment`, if
  /// provided, runs after the transaction-table snapshot to add the
  /// catalog/space snapshots to the body (the storage manager owns those).
  /// `redo_lsn_out`, if non-null, receives the body's redo_lsn — the LSN
  /// the caller may Recycle the log up to once this returns (the
  /// checkpoint record is already durable then). Returns the checkpoint's
  /// LSN.
  Result<Lsn> TakeCheckpoint(
      const std::function<Lsn()>& redo_lsn_source,
      const std::function<void(log::CheckpointBody*)>& augment = {},
      Lsn* redo_lsn_out = nullptr);

  /// LSN of the most recent completed checkpoint (null if none).
  Lsn last_checkpoint() const {
    return Lsn{last_checkpoint_.load(std::memory_order_acquire)};
  }

  /// Number of active transactions.
  size_t ActiveCount() const;

  /// Records that `txn` wrote a WAL record (updates the undo chain tail).
  void NoteLogged(Transaction* txn, Lsn lsn, Lsn end) {
    if (txn->first_lsn.IsNull()) txn->first_lsn = lsn;
    txn->last_lsn = lsn;
    txn->last_lsn_published.store(lsn.value, std::memory_order_release);
    txn->last_end = end;
    txn->log_bytes += end.value - lsn.value;
  }

  const TxnStats& stats() const { return stats_; }
  log::LogManager* log() { return log_; }
  lock::LockManager* locks() { return locks_; }

 private:
  /// Removes txn from the active list and refreshes the oldest cache.
  void Retire(Transaction* txn);
  void ReleaseAllLocks(Transaction* txn);

  log::LogManager* log_;
  lock::LockManager* locks_;
  TxnOptions options_;
  UndoFn undo_;

  mutable std::mutex active_mutex_;
  std::map<TxnId, std::unique_ptr<Transaction>> active_;  // Ordered by id.
  std::atomic<TxnId> next_id_{1};
  std::atomic<TxnId> oldest_cache_{kInvalidTxnId};
  std::atomic<uint64_t> last_checkpoint_{0};
  mutable TxnStats stats_;
};

}  // namespace shoremt::txn

#endif  // SHOREMT_TXN_TXN_MANAGER_H_
