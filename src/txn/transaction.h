#ifndef SHOREMT_TXN_TRANSACTION_H_
#define SHOREMT_TXN_TRANSACTION_H_

#include <atomic>
#include <cstdint>

#include "common/types.h"
#include "lock/txn_lock_list.h"

namespace shoremt::txn {

enum class TxnState : uint8_t {
  kActive,
  kCommitted,
  kAborted,
};

/// One transaction's bookkeeping. Owned by the TxnManager; not shared
/// across worker threads (each transaction runs on one thread at a time,
/// the classic storage-manager threading model).
struct Transaction {
  TxnId id = kInvalidTxnId;
  TxnState state = TxnState::kActive;

  /// Log append horizon when the transaction began (assigned by
  /// TxnManager::Begin, before the transaction enters the active table):
  /// every record the transaction will ever write lands at or above it.
  /// Checkpoints floor the redo/recycle horizon with the minimum begin_lsn
  /// over active transactions, so no live undo chain and no redo-relevant
  /// update can ever sit in a recycled segment.
  Lsn begin_lsn;
  /// First/last WAL record of this transaction (undo chain endpoints).
  /// Owner-thread-private, like every plain field here.
  Lsn first_lsn;
  Lsn last_lsn;
  /// End LSN of the newest record (commit-flush target).
  Lsn last_end;
  /// Atomic mirror of last_lsn, published by NoteLogged: the ONLY chain
  /// field a fuzzy checkpoint may read — the snapshot races the owner
  /// thread's appends by design (staleness is tolerated; recovery merges
  /// the checkpoint table with the records it scans).
  std::atomic<uint64_t> last_lsn_published{0};

  /// WAL bytes appended on behalf of this transaction (record payloads
  /// between start and end LSN). Thread-private: feeds the owning
  /// session's statistics without touching a shared counter.
  uint64_t log_bytes = 0;

  /// The transaction's private lock handle (attached by TxnManager::Begin)
  /// — the only way this transaction acquires locks. It carries the
  /// held-mode cache, per-store escalation counters, and per-shard release
  /// lists; TxnManager::CommitAsync/Abort bulk-release through it.
  lock::TxnLockList locks;
};

}  // namespace shoremt::txn

#endif  // SHOREMT_TXN_TRANSACTION_H_
