#ifndef SHOREMT_TXN_TRANSACTION_H_
#define SHOREMT_TXN_TRANSACTION_H_

#include <cstdint>

#include "common/types.h"
#include "lock/txn_lock_list.h"

namespace shoremt::txn {

enum class TxnState : uint8_t {
  kActive,
  kCommitted,
  kAborted,
};

/// One transaction's bookkeeping. Owned by the TxnManager; not shared
/// across worker threads (each transaction runs on one thread at a time,
/// the classic storage-manager threading model).
struct Transaction {
  TxnId id = kInvalidTxnId;
  TxnState state = TxnState::kActive;

  /// First/last WAL record of this transaction (undo chain endpoints).
  Lsn first_lsn;
  Lsn last_lsn;
  /// End LSN of the newest record (commit-flush target).
  Lsn last_end;

  /// WAL bytes appended on behalf of this transaction (record payloads
  /// between start and end LSN). Thread-private: feeds the owning
  /// session's statistics without touching a shared counter.
  uint64_t log_bytes = 0;

  /// The transaction's private lock handle (attached by TxnManager::Begin)
  /// — the only way this transaction acquires locks. It carries the
  /// held-mode cache, per-store escalation counters, and per-shard release
  /// lists; TxnManager::CommitAsync/Abort bulk-release through it.
  lock::TxnLockList locks;
};

}  // namespace shoremt::txn

#endif  // SHOREMT_TXN_TRANSACTION_H_
