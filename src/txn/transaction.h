#ifndef SHOREMT_TXN_TRANSACTION_H_
#define SHOREMT_TXN_TRANSACTION_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "lock/lock_id.h"

namespace shoremt::txn {

enum class TxnState : uint8_t {
  kActive,
  kCommitted,
  kAborted,
};

/// One transaction's bookkeeping. Owned by the TxnManager; not shared
/// across worker threads (each transaction runs on one thread at a time,
/// the classic storage-manager threading model).
struct Transaction {
  TxnId id = kInvalidTxnId;
  TxnState state = TxnState::kActive;

  /// First/last WAL record of this transaction (undo chain endpoints).
  Lsn first_lsn;
  Lsn last_lsn;
  /// End LSN of the newest record (commit-flush target).
  Lsn last_end;

  /// WAL bytes appended on behalf of this transaction (record payloads
  /// between start and end LSN). Thread-private: feeds the owning
  /// session's statistics without touching a shared counter.
  uint64_t log_bytes = 0;
  /// Lock requests by this transaction that had to park.
  uint64_t lock_waits = 0;

  /// Locks held, in acquisition order (released in reverse at end).
  std::vector<lock::LockId> held_locks;
  /// Fast dedupe of held_locks.
  std::unordered_set<lock::LockId, lock::LockIdHash> held_set;

  /// Row locks taken per store — drives lock escalation.
  std::unordered_map<StoreId, uint32_t> row_lock_counts;
  /// Stores where this transaction escalated to a store-level lock.
  std::unordered_set<StoreId> escalated_stores;

  bool Holds(const lock::LockId& id) const { return held_set.contains(id); }

  void RememberLock(const lock::LockId& id) {
    if (held_set.insert(id).second) held_locks.push_back(id);
  }
};

}  // namespace shoremt::txn

#endif  // SHOREMT_TXN_TRANSACTION_H_
