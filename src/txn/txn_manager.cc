#include "txn/txn_manager.h"

#include <vector>

namespace shoremt::txn {

TxnManager::TxnManager(log::LogManager* log, lock::LockManager* locks,
                       TxnOptions options)
    : log_(log), locks_(locks), options_(options) {}

Transaction* TxnManager::Begin() {
  auto txn = std::make_unique<Transaction>();
  txn->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  // Read the append horizon BEFORE entering the active table: once a
  // checkpoint can see this transaction, begin_lsn already bounds every
  // record it will write (the recycle-floor invariant).
  txn->begin_lsn = log_->next_lsn();
  txn->locks = locks_->Attach(txn->id);
  Transaction* raw = txn.get();
  {
    std::lock_guard<std::mutex> guard(active_mutex_);
    active_.emplace(raw->id, std::move(txn));
    if (options_.oldest_txn_cache) {
      oldest_cache_.store(active_.begin()->first, std::memory_order_release);
    }
  }
  stats_.begun.fetch_add(1, std::memory_order_relaxed);
  return raw;
}

void TxnManager::Retire(Transaction* txn) {
  std::lock_guard<std::mutex> guard(active_mutex_);
  active_.erase(txn->id);  // Destroys the Transaction.
  if (options_.oldest_txn_cache) {
    oldest_cache_.store(
        active_.empty() ? kInvalidTxnId : active_.begin()->first,
        std::memory_order_release);
  }
}

void TxnManager::ReleaseAllLocks(Transaction* txn) {
  // Strict 2PL: everything goes at once — one latch acquisition per shard
  // the transaction touched, through its private handle.
  txn->locks.ReleaseAll();
}

Result<CommitToken> TxnManager::CommitAsync(Transaction* txn) {
  if (txn->state != TxnState::kActive) {
    return Status::InvalidArgument("transaction not active");
  }
  CommitToken token;
  token.txn = txn->id;
  if (!txn->last_lsn.IsNull()) {
    log::LogRecord rec;
    rec.type = log::LogRecordType::kCommit;
    rec.txn = txn->id;
    rec.prev_lsn = txn->last_lsn;
    SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(rec));
    txn->log_bytes += a.end.value - a.lsn.value;
    token.lsn = a.end;
  } else if (txn->locks.held() > 0) {
    // Read-only but it observed locked state: with early lock release a
    // predecessor's writes can be committed-but-unflushed when this
    // transaction reads them, so its acknowledgment must not outrun the
    // predecessor's. Every such predecessor's commit record is already in
    // the buffer (it preceded our lock grant), hence below the current
    // append horizon — waiting on that horizon restores the dependency
    // order. A lock-free transaction observed nothing and stays instant.
    token.lsn = log_->next_lsn();
  }
  token.counters = TxnCounters{txn->log_bytes, txn->locks.waits(),
                               txn->locks.cache_hits()};
  token.log = log_;
  // The commit point is the in-memory commit-record append above. Early
  // lock release: successors may touch this transaction's rows right now,
  // before the flush — their commit records land at higher LSNs, so the
  // durable prefix can never acknowledge a dependent first.
  txn->state = TxnState::kCommitted;
  ReleaseAllLocks(txn);
  Retire(txn);
  stats_.committed.fetch_add(1, std::memory_order_relaxed);
  if (token.lsn.IsNull()) {
    token.durable = true;  // Read-only: nothing to make durable.
  } else {
    log_->SubmitFlush(token.lsn);
    token.durable = log_->IsDurable(token.lsn);
  }
  return token;
}

Status TxnManager::Wait(CommitToken* token) {
  if (token->lsn.IsNull()) {
    token->durable = true;
    return Status::Ok();
  }
  // Even an already-durable token goes through the pipeline so the
  // avoided-wait shows up in LogStats (the group-commit win being
  // measured).
  SHOREMT_RETURN_NOT_OK(log_->WaitDurable(token->lsn));
  token->durable = true;
  return Status::Ok();
}

Status TxnManager::Commit(Transaction* txn, TxnCounters* counters_out) {
  SHOREMT_ASSIGN_OR_RETURN(CommitToken token, CommitAsync(txn));
  if (counters_out != nullptr) *counters_out = token.counters;
  // Durability point for the blocking API: ride the group-commit pipeline
  // until the daemon's flush passes the commit LSN.
  return Wait(&token);
}

Status TxnManager::Abort(Transaction* txn, TxnCounters* counters_out) {
  if (txn->state != TxnState::kActive) {
    return Status::InvalidArgument("transaction not active");
  }
  // Undo reads records back from the log device; make the tail readable.
  if (!txn->last_lsn.IsNull()) {
    SHOREMT_RETURN_NOT_OK(log_->FlushTo(txn->last_end));
    Lsn cursor = txn->last_lsn;
    while (!cursor.IsNull()) {
      SHOREMT_ASSIGN_OR_RETURN(log::LogRecord rec, log_->ReadRecord(cursor));
      if (rec.type == log::LogRecordType::kClr) {
        cursor = rec.undo_next;  // Skip already-undone work.
        continue;
      }
      if (undo_) SHOREMT_RETURN_NOT_OK(undo_(txn, rec));
      cursor = rec.prev_lsn;
    }
    log::LogRecord done;
    done.type = log::LogRecordType::kAbort;
    done.txn = txn->id;
    done.prev_lsn = txn->last_lsn;
    SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(done));
    txn->log_bytes += a.end.value - a.lsn.value;
    SHOREMT_RETURN_NOT_OK(log_->FlushTo(a.end));
  }
  // Counters are read only now: the undo pass above appended CLRs (via
  // NoteLogged), which must be part of the reported WAL traffic.
  if (counters_out != nullptr) {
    *counters_out = TxnCounters{txn->log_bytes, txn->locks.waits(),
                                txn->locks.cache_hits()};
  }
  txn->state = TxnState::kAborted;
  ReleaseAllLocks(txn);
  Retire(txn);
  stats_.aborted.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

TxnId TxnManager::OldestActiveTxn() const {
  if (options_.oldest_txn_cache) {
    return oldest_cache_.load(std::memory_order_acquire);
  }
  // Original Shore: walk the list under the mutex (§7.3's hotspot).
  stats_.oldest_scans.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> guard(active_mutex_);
  return active_.empty() ? kInvalidTxnId : active_.begin()->first;
}

Result<Lsn> TxnManager::TakeCheckpoint(
    const std::function<Lsn()>& redo_lsn_source,
    const std::function<void(log::CheckpointBody*)>& augment,
    Lsn* redo_lsn_out) {
  log::CheckpointBody body;
  {
    // Freeze begins/ends while snapshotting the transaction table. The
    // expensive part is redo_lsn_source: the blocking variant scans the
    // whole buffer pool in here (original Shore); the decoupled variant
    // just reads the dirty-page table's incremental minimum.
    std::lock_guard<std::mutex> guard(active_mutex_);
    Lsn floor;
    for (const auto& [id, txn] : active_) {
      // last_lsn_published, not last_lsn: the owner thread may be
      // appending right now — the mirror is the field published for
      // exactly this fuzzy read (recovery tolerates its staleness).
      body.active_txns.push_back(
          {id, Lsn{txn->last_lsn_published.load(std::memory_order_acquire)},
           txn->begin_lsn});
      if (floor.IsNull() || txn->begin_lsn < floor) floor = txn->begin_lsn;
    }
    Lsn redo = redo_lsn_source();
    // Floor by the oldest active transaction's begin LSN: it covers (a)
    // undo chains, which must stay readable below any recycled horizon,
    // and (b) the fuzzy MarkDirty window — a record appended but not yet
    // registered in the dirty-page table always belongs to an active
    // transaction, whose begin_lsn bounds it.
    if (!floor.IsNull() && floor < redo) redo = floor;
    body.redo_lsn = redo;
  }
  // The catalog/space snapshots are fuzzy (their own latches, outside the
  // transaction freeze): analysis re-applies post-snapshot metadata
  // records through idempotent hooks, so over-inclusion is harmless.
  if (augment) augment(&body);
  log::LogRecord rec;
  rec.type = log::LogRecordType::kCheckpoint;
  SerializeCheckpoint(body, &rec.after);
  SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(rec));
  SHOREMT_RETURN_NOT_OK(log_->FlushTo(a.end));
  last_checkpoint_.store(a.lsn.value, std::memory_order_release);
  log_->NoteCheckpoint();
  if (redo_lsn_out != nullptr) *redo_lsn_out = body.redo_lsn;
  return a.lsn;
}

size_t TxnManager::ActiveCount() const {
  std::lock_guard<std::mutex> guard(active_mutex_);
  return active_.size();
}

}  // namespace shoremt::txn
