#include "space/space_manager.h"

#include <algorithm>

namespace shoremt::space {

namespace {

std::atomic<uint64_t> g_next_instance_id{1};

/// Thread-local extent→store cache, direct-mapped by extent id. Entries
/// are tagged with the owning SpaceManager instance and its epoch so drops
/// and manager teardown invalidate them implicitly.
struct ExtentCacheEntry {
  uint64_t instance = 0;
  uint64_t epoch = 0;
  ExtentId extent = 0;
  StoreId store = kInvalidStoreId;
  bool valid = false;
};
constexpr size_t kExtentCacheSlots = 16;
thread_local ExtentCacheEntry t_extent_cache[kExtentCacheSlots];

}  // namespace

SpaceManager::SpaceManager(io::Volume* volume, SpaceOptions options)
    : volume_(volume),
      options_(options),
      mutex_stats_("space.mutex"),
      space_mutex_(options.mutex_kind, &mutex_stats_),
      instance_id_(g_next_instance_id.fetch_add(1)) {
  sync::SyncStatsRegistry::Instance().Register(&mutex_stats_);
  // Page 0 is the volume header; reserve extent 0 so data never lands
  // there (keeps PageNum 0 == invalid).
  extents_.push_back(ExtentEntry{kInvalidStoreId, 0xff});
}

SpaceManager::~SpaceManager() {
  sync::SyncStatsRegistry::Instance().Unregister(&mutex_stats_);
}

Status SpaceManager::CreateStore(StoreId store) {
  if (store == kInvalidStoreId) {
    return Status::InvalidArgument("store id 0 is reserved");
  }
  sync::ConfigurableMutex::Guard guard(space_mutex_);
  if (stores_.contains(store)) {
    return Status::AlreadyExists("store exists");
  }
  stores_.emplace(store, StoreInfo{});
  return Status::Ok();
}

Status SpaceManager::DropStore(StoreId store) {
  sync::ConfigurableMutex::Guard guard(space_mutex_);
  auto it = stores_.find(store);
  if (it == stores_.end()) return Status::NotFound("no such store");
  for (ExtentId e : it->second.extents) {
    extents_[e] = ExtentEntry{};
    free_extents_.push_back(e);
  }
  stores_.erase(it);
  epoch_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

bool SpaceManager::StoreExists(StoreId store) const {
  sync::ConfigurableMutex::Guard guard(space_mutex_);
  return stores_.contains(store);
}

Result<PageNum> SpaceManager::AllocateLocked(StoreId store) {
  auto it = stores_.find(store);
  if (it == stores_.end()) return Status::NotFound("no such store");
  StoreInfo& info = it->second;

  // Fill the active extent before grabbing another (Shore's pattern).
  if (info.has_active_extent) {
    ExtentEntry& e = extents_[info.active_extent];
    if (e.alloc_bitmap != 0xff) {
      for (uint32_t i = 0; i < kPagesPerExtent; ++i) {
        if ((e.alloc_bitmap & (1u << i)) == 0) {
          e.alloc_bitmap |= (1u << i);
          PageNum page = info.active_extent * kPagesPerExtent + i;
          info.pages.push_back(page);
          info.cached_last_page = page;
          return page;
        }
      }
    }
  }

  // Need a new extent: reuse a freed one or append to the volume.
  ExtentId extent;
  if (!free_extents_.empty()) {
    extent = free_extents_.back();
    free_extents_.pop_back();
  } else {
    extent = extents_.size();
    extents_.push_back(ExtentEntry{});
  }
  extents_[extent].owner = store;
  extents_[extent].alloc_bitmap = 0x01;
  info.extents.push_back(extent);
  info.active_extent = extent;
  info.has_active_extent = true;

  PageNum page = extent * kPagesPerExtent;
  PageNum needed = (extent + 1) * kPagesPerExtent;
  if (volume_->NumPages() < needed) {
    SHOREMT_RETURN_NOT_OK(volume_->Extend(needed));
  }
  info.pages.push_back(page);
  info.cached_last_page = page;
  return page;
}

Result<PageNum> SpaceManager::AllocatePage(StoreId store,
                                           const PageInitFn& init) {
  stats_.pages_allocated.fetch_add(1, std::memory_order_relaxed);
  if (options_.refactored_alloc) {
    // Shore-MT path: allocate under the mutex, initialize after release.
    PageNum page;
    {
      sync::ConfigurableMutex::Guard guard(space_mutex_);
      auto r = AllocateLocked(store);
      if (!r.ok()) return r.status();
      page = *r;
    }
    if (init) SHOREMT_RETURN_NOT_OK(init(page));
    return page;
  }
  // Original Shore path: the page latch (and possibly I/O) happens while
  // the allocation mutex is held, serializing every other allocator.
  sync::ConfigurableMutex::Guard guard(space_mutex_);
  auto r = AllocateLocked(store);
  if (!r.ok()) return r.status();
  if (init) SHOREMT_RETURN_NOT_OK(init(*r));
  return *r;
}

Status SpaceManager::FreePage(PageNum page) {
  sync::ConfigurableMutex::Guard guard(space_mutex_);
  ExtentId extent = ExtentOf(page);
  if (extent >= extents_.size()) return Status::NotFound("bad page");
  ExtentEntry& e = extents_[extent];
  uint32_t bit = 1u << (page % kPagesPerExtent);
  if (e.owner == kInvalidStoreId || (e.alloc_bitmap & bit) == 0) {
    return Status::NotFound("page not allocated");
  }
  e.alloc_bitmap &= ~bit;
  auto it = stores_.find(e.owner);
  if (it != stores_.end()) {
    StoreInfo& info = it->second;
    info.pages.erase(std::remove(info.pages.begin(), info.pages.end(), page),
                     info.pages.end());
    if (info.cached_last_page == page) {
      info.cached_last_page =
          info.pages.empty() ? kInvalidPageNum : info.pages.back();
    }
    if (e.alloc_bitmap == 0) {
      info.extents.erase(
          std::remove(info.extents.begin(), info.extents.end(), extent),
          info.extents.end());
      if (info.has_active_extent && info.active_extent == extent) {
        info.has_active_extent = false;
      }
      e = ExtentEntry{};
      free_extents_.push_back(extent);
    }
  }
  epoch_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

bool SpaceManager::CacheLookup(ExtentId extent, StoreId* store) const {
  const ExtentCacheEntry& e = t_extent_cache[extent % kExtentCacheSlots];
  if (e.valid && e.instance == instance_id_ &&
      e.epoch == epoch_.load(std::memory_order_acquire) &&
      e.extent == extent) {
    *store = e.store;
    return true;
  }
  return false;
}

void SpaceManager::CacheInsert(ExtentId extent, StoreId store) const {
  ExtentCacheEntry& e = t_extent_cache[extent % kExtentCacheSlots];
  e.instance = instance_id_;
  e.epoch = epoch_.load(std::memory_order_acquire);
  e.extent = extent;
  e.store = store;
  e.valid = true;
}

Result<StoreId> SpaceManager::OwnerOf(PageNum page) {
  stats_.ownership_checks.fetch_add(1, std::memory_order_relaxed);
  ExtentId extent = ExtentOf(page);

  if (options_.extent_cache) {
    StoreId cached;
    if (CacheLookup(extent, &cached)) {
      stats_.ownership_cache_hits.fetch_add(1, std::memory_order_relaxed);
      return cached;
    }
  }

  StoreId owner = kInvalidStoreId;
  {
    sync::ConfigurableMutex::Guard guard(space_mutex_);
    if (extent >= extents_.size()) return Status::NotFound("bad page");
    if (options_.full_scan_ownership) {
      // Original Shore: walk the allocation tables looking for the extent
      // (logical logging forces a re-verification on every insert).
      for (ExtentId e = 0; e < extents_.size(); ++e) {
        if (e == extent) {
          owner = extents_[e].owner;
          break;
        }
      }
    } else {
      owner = extents_[extent].owner;
    }
    uint32_t bit = 1u << (page % kPagesPerExtent);
    if (owner == kInvalidStoreId ||
        (extents_[extent].alloc_bitmap & bit) == 0) {
      return Status::NotFound("page not allocated");
    }
  }
  if (options_.extent_cache) CacheInsert(extent, owner);
  return owner;
}

Result<PageNum> SpaceManager::LastPageOf(StoreId store) {
  stats_.last_page_lookups.fetch_add(1, std::memory_order_relaxed);
  sync::ConfigurableMutex::Guard guard(space_mutex_);
  auto it = stores_.find(store);
  if (it == stores_.end()) return Status::NotFound("no such store");
  StoreInfo& info = it->second;
  if (info.pages.empty()) return Status::NotFound("store has no pages");
  if (options_.last_page_cache && info.cached_last_page != kInvalidPageNum) {
    return info.cached_last_page;
  }
  // Walk the page chain to its end — O(pages) per lookup, O(n^2) per load
  // (§7.6's "searching a linked list of pages to find the last").
  PageNum last = kInvalidPageNum;
  for (PageNum p : info.pages) {
    stats_.last_page_scan_steps.fetch_add(1, std::memory_order_relaxed);
    last = p;
  }
  return last;
}

Result<std::vector<PageNum>> SpaceManager::PagesOf(StoreId store) const {
  sync::ConfigurableMutex::Guard guard(space_mutex_);
  auto it = stores_.find(store);
  if (it == stores_.end()) return Status::NotFound("no such store");
  return it->second.pages;
}

Result<uint64_t> SpaceManager::PageCountOf(StoreId store) const {
  sync::ConfigurableMutex::Guard guard(space_mutex_);
  auto it = stores_.find(store);
  if (it == stores_.end()) return Status::NotFound("no such store");
  return static_cast<uint64_t>(it->second.pages.size());
}

Status SpaceManager::ApplyCreateStore(StoreId store) {
  sync::ConfigurableMutex::Guard guard(space_mutex_);
  stores_.try_emplace(store, StoreInfo{});
  return Status::Ok();
}

Status SpaceManager::ApplyAllocPage(StoreId store, PageNum page) {
  sync::ConfigurableMutex::Guard guard(space_mutex_);
  // A missing store means its kCreateStore record sits below the recycled
  // horizon; materialize it — the checkpoint snapshot confirms it later.
  StoreInfo& info = stores_.try_emplace(store, StoreInfo{}).first->second;
  ExtentId extent = ExtentOf(page);
  while (extents_.size() <= extent) extents_.push_back(ExtentEntry{});
  ExtentEntry& e = extents_[extent];
  uint32_t bit = 1u << (page % kPagesPerExtent);
  if (e.owner == store && (e.alloc_bitmap & bit) != 0) {
    return Status::Ok();  // Already applied (idempotent redo).
  }
  if (e.owner == kInvalidStoreId) {
    e.owner = store;
    info.extents.push_back(extent);
    free_extents_.erase(
        std::remove(free_extents_.begin(), free_extents_.end(), extent),
        free_extents_.end());
  } else if (e.owner != store) {
    return Status::Corruption("extent owned by another store");
  }
  e.alloc_bitmap |= bit;
  info.pages.push_back(page);
  info.cached_last_page = page;
  info.active_extent = extent;
  info.has_active_extent = true;
  PageNum needed = (extent + 1) * kPagesPerExtent;
  if (volume_->NumPages() < needed) {
    SHOREMT_RETURN_NOT_OK(volume_->Extend(needed));
  }
  return Status::Ok();
}

std::vector<std::pair<StoreId, std::vector<PageNum>>>
SpaceManager::SnapshotStores() const {
  sync::ConfigurableMutex::Guard guard(space_mutex_);
  std::vector<std::pair<StoreId, std::vector<PageNum>>> out;
  out.reserve(stores_.size());
  for (const auto& [store, info] : stores_) {
    out.emplace_back(store, info.pages);
  }
  return out;
}

}  // namespace shoremt::space
