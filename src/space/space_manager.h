#ifndef SHOREMT_SPACE_SPACE_MANAGER_H_
#define SHOREMT_SPACE_SPACE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "io/volume.h"
#include "sync/configurable_mutex.h"
#include "sync/sync_stats.h"

namespace shoremt::space {

/// Tuning knobs for the free space manager. The defaults are the Shore-MT
/// "final" configuration; the baseline presets in sm/options.h flip these
/// back to reproduce each optimization stage (§6.2.2, §7.3, §7.6, §7.7).
struct SpaceOptions {
  /// Mutex protecting the allocation tables (the Figure 6 sweep).
  sync::MutexKind mutex_kind = sync::MutexKind::kMcs;
  /// If true, the page-initialization callback passed to AllocatePage runs
  /// *after* the allocation mutex is released (the Figure 6 "Refactor"); if
  /// false it runs inside the critical section, serializing allocations
  /// behind page latch acquisition and possible I/O.
  bool refactored_alloc = true;
  /// Thread-local cache of recent extent→store lookups; cuts metadata
  /// checks per record insert by >95% (§6.2.2 problem 1).
  bool extent_cache = true;
  /// Per-store cached last page; otherwise finding the append target walks
  /// the store's page list — the O(n^2) insertion pattern of §7.6.
  bool last_page_cache = true;
  /// Emulates original Shore's logical-logging ownership verification by
  /// scanning the whole extent table instead of indexing into it.
  bool full_scan_ownership = false;
};

/// Counters exposed for benches and the calibration harness.
struct SpaceStats {
  std::atomic<uint64_t> pages_allocated{0};
  std::atomic<uint64_t> ownership_checks{0};
  std::atomic<uint64_t> ownership_cache_hits{0};
  std::atomic<uint64_t> last_page_lookups{0};
  std::atomic<uint64_t> last_page_scan_steps{0};
};

/// Free space and metadata manager (§2.2.6): owns the extent map (which
/// store each 8-page extent belongs to, which pages in it are allocated)
/// and the per-store page lists. Pages are handed out extent-at-a-time per
/// store, filling each extent before grabbing the next — the access
/// pattern that makes the thread-local extent cache effective.
class SpaceManager {
 public:
  /// Runs with the new page number before the allocation is published;
  /// typically fixes the page in the buffer pool and formats it.
  using PageInitFn = std::function<Status(PageNum)>;

  SpaceManager(io::Volume* volume, SpaceOptions options);
  ~SpaceManager();

  SpaceManager(const SpaceManager&) = delete;
  SpaceManager& operator=(const SpaceManager&) = delete;

  /// Registers a store. Fails with AlreadyExists if present.
  Status CreateStore(StoreId store);
  /// Removes a store and releases its extents.
  Status DropStore(StoreId store);
  bool StoreExists(StoreId store) const;

  /// Allocates one page for `store`, growing the volume when needed, and
  /// runs `init` on it (inside or outside the critical section depending
  /// on SpaceOptions::refactored_alloc).
  Result<PageNum> AllocatePage(StoreId store, const PageInitFn& init);
  /// Returns `page` to the free pool.
  Status FreePage(PageNum page);

  /// Store owning `page` (the per-insert metadata check of §6.2.2).
  Result<StoreId> OwnerOf(PageNum page);
  /// The current append target of `store` (last allocated page).
  Result<PageNum> LastPageOf(StoreId store);
  /// All pages of `store` in allocation order (heap scans, drop, redo).
  Result<std::vector<PageNum>> PagesOf(StoreId store) const;
  /// Number of pages allocated to `store`.
  Result<uint64_t> PageCountOf(StoreId store) const;

  /// Idempotent redo hooks used by recovery to rebuild the maps. With a
  /// recycled log the kCreateStore record may be gone (it lives below the
  /// checkpoint horizon, replaced by the checkpoint's space snapshot), so
  /// ApplyAllocPage creates a missing store instead of failing — the
  /// snapshot fills in the rest when the scan reaches the checkpoint.
  Status ApplyCreateStore(StoreId store);
  Status ApplyAllocPage(StoreId store, PageNum page);

  /// Fuzzy snapshot of every store's page list (allocation order), taken
  /// under the space mutex — the checkpoint body's space map. Replaying it
  /// through the Apply hooks reproduces the allocation state without the
  /// (possibly recycled) metadata records.
  std::vector<std::pair<StoreId, std::vector<PageNum>>> SnapshotStores()
      const;

  const SpaceStats& stats() const { return stats_; }
  const SpaceOptions& options() const { return options_; }

 private:
  struct ExtentEntry {
    StoreId owner = kInvalidStoreId;
    uint8_t alloc_bitmap = 0;  ///< Bit i set = page i of the extent in use.
  };

  struct StoreInfo {
    std::vector<ExtentId> extents;
    std::vector<PageNum> pages;     ///< Allocation order (page chain).
    ExtentId active_extent = 0;     ///< Extent currently being filled.
    bool has_active_extent = false;
    PageNum cached_last_page = kInvalidPageNum;
  };

  /// Allocation under space_mutex_; returns the new page and whether the
  /// volume must grow to `volume_pages_needed`.
  Result<PageNum> AllocateLocked(StoreId store);
  /// Consults/updates the thread-local extent cache.
  bool CacheLookup(ExtentId extent, StoreId* store) const;
  void CacheInsert(ExtentId extent, StoreId store) const;

  io::Volume* volume_;
  SpaceOptions options_;
  sync::SyncStats mutex_stats_;
  mutable sync::ConfigurableMutex space_mutex_;
  std::vector<ExtentEntry> extents_;
  std::vector<ExtentId> free_extents_;
  std::unordered_map<StoreId, StoreInfo> stores_;
  SpaceStats stats_;
  /// Bumped on DropStore so stale thread-local cache entries miss.
  std::atomic<uint64_t> epoch_{1};
  /// Distinguishes this instance in the shared thread-local cache.
  const uint64_t instance_id_;
};

}  // namespace shoremt::space

#endif  // SHOREMT_SPACE_SPACE_MANAGER_H_
