#ifndef SHOREMT_LOCK_REQUEST_POOL_H_
#define SHOREMT_LOCK_REQUEST_POOL_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "common/types.h"
#include "lock/lock_mode.h"
#include "sync/lockfree_stack.h"

namespace shoremt::lock {

/// One lock request record, owned by the pool and referenced by index from
/// the lock heads' granted/waiting lists.
struct LockRequest {
  TxnId txn = kInvalidTxnId;
  LockMode mode = LockMode::kNone;
  LockMode convert_to = LockMode::kNone;  ///< Upgrade target while waiting.
  bool granted = false;
  bool is_upgrade = false;
};

/// How the pool's freelist is protected — the §7.5 knob: "the pool's mutex
/// became a contention point, so we reimplemented it as a lock-free stack".
enum class RequestPoolKind : uint8_t {
  kMutexFreelist,
  kLockFreeStack,
};

/// Pre-allocated pool of LockRequest records (§2.2.3: "the lock manager
/// maintains a pool of pre-allocated lock requests"). The sharded lock
/// table owns one pool PER SHARD — the single global pool was an
/// allocation funnel (every Lock/Unlock pushed through one lock-free
/// stack head), and per-shard pools also make exhaustion local: a drained
/// shard reports ResourceExhausted without starving the others.
class RequestPool {
 public:
  RequestPool(RequestPoolKind kind, uint32_t capacity)
      : kind_(kind), requests_(capacity), lockfree_(capacity) {
    mutex_freelist_.reserve(capacity);
    for (uint32_t i = 0; i < capacity; ++i) {
      if (kind_ == RequestPoolKind::kLockFreeStack) {
        lockfree_.Push(i);
      } else {
        mutex_freelist_.push_back(i);
      }
    }
  }

  RequestPool(const RequestPool&) = delete;
  RequestPool& operator=(const RequestPool&) = delete;

  /// Pops a free slot; nullopt when the pool is exhausted.
  std::optional<uint32_t> Acquire() {
    if (kind_ == RequestPoolKind::kLockFreeStack) return lockfree_.Pop();
    std::lock_guard<std::mutex> guard(mutex_);
    if (mutex_freelist_.empty()) return std::nullopt;
    uint32_t idx = mutex_freelist_.back();
    mutex_freelist_.pop_back();
    return idx;
  }

  void Release(uint32_t idx) {
    requests_[idx] = LockRequest{};
    if (kind_ == RequestPoolKind::kLockFreeStack) {
      lockfree_.Push(idx);
    } else {
      std::lock_guard<std::mutex> guard(mutex_);
      mutex_freelist_.push_back(idx);
    }
  }

  LockRequest& operator[](uint32_t idx) { return requests_[idx]; }
  const LockRequest& operator[](uint32_t idx) const { return requests_[idx]; }

  RequestPoolKind kind() const { return kind_; }

 private:
  RequestPoolKind kind_;
  std::vector<LockRequest> requests_;
  sync::LockFreeIndexStack lockfree_;
  std::mutex mutex_;
  std::vector<uint32_t> mutex_freelist_;
};

}  // namespace shoremt::lock

#endif  // SHOREMT_LOCK_REQUEST_POOL_H_
