#ifndef SHOREMT_LOCK_TXN_LOCK_LIST_H_
#define SHOREMT_LOCK_TXN_LOCK_LIST_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "lock/lock_id.h"
#include "lock/lock_manager.h"
#include "lock/lock_mode.h"

namespace shoremt::lock {

/// A transaction's private view of the lock table — the only way to
/// acquire locks. Owned by the Transaction, vended by
/// LockManager::Attach(TxnId), used by one thread at a time (the
/// storage-manager threading model: a transaction runs on one thread).
///
/// The handle carries:
///  - a private cache of held modes, so re-granting an equal-or-weaker
///    mode (the overwhelmingly common case for volume/store intention
///    locks — every row operation re-requests them) never touches the
///    shared table;
///  - the per-store row-lock counters that drive lock escalation, moving
///    escalation out of the transaction manager and into the lock layer;
///  - each lock's shard, so ReleaseAll bulk-releases with one latch
///    acquisition per touched shard instead of per-id hash probes.
///
/// A default-constructed handle is detached: every Lock call fails with
/// InvalidArgument until a real handle is move-assigned over it.
class TxnLockList {
 public:
  TxnLockList() = default;
  /// Moves detach the source: a moved-from handle rejects every Lock call
  /// with InvalidArgument instead of lying about being attached over
  /// emptied bookkeeping.
  TxnLockList(TxnLockList&& other) noexcept { *this = std::move(other); }
  TxnLockList& operator=(TxnLockList&& other) noexcept {
    if (this != &other) {
      mgr_ = other.mgr_;
      other.mgr_ = nullptr;
      txn_ = other.txn_;
      other.txn_ = kInvalidTxnId;
      held_ = std::move(other.held_);
      shard_ids_ = std::move(other.shard_ids_);
      row_counts_ = std::move(other.row_counts_);
      escalated_ = std::move(other.escalated_);
      waits_ = other.waits_;
      cache_hits_ = other.cache_hits_;
      escalations_ = other.escalations_;
    }
    return *this;
  }
  TxnLockList(const TxnLockList&) = delete;
  TxnLockList& operator=(const TxnLockList&) = delete;

  /// Acquires (or upgrades to) `mode` on `id`. Served from the private
  /// cache when the held mode already covers `mode`; otherwise goes to
  /// the shared table (blocking up to the manager's timeout) and updates
  /// the cache. Errors: Deadlock (victim), ResourceExhausted (shard
  /// request pool drained — abort and retry), InvalidArgument (detached).
  Status Lock(const LockId& id, LockMode mode);

  /// Acquires a store-level lock plus the volume intention above it
  /// (table scan / escalation / DDL).
  Status LockStore(StoreId store, LockMode mode);

  /// Acquires a record lock plus the intention locks above it, escalating
  /// to a store lock past the manager's threshold. After escalation the
  /// store lock covers every record and further calls are free — except a
  /// write after a read-escalation, which upgrades the store lock S → X
  /// through the shared table first.
  Status LockRecord(StoreId store, RecordId rid, LockMode mode);

  /// The mode this transaction holds on `id` — a handle-local lookup that
  /// never touches the shared table.
  LockMode HeldMode(const LockId& id) const {
    auto it = held_.find(id);
    return it == held_.end() ? LockMode::kNone : it->second;
  }

  /// Releases every held lock (strict 2PL end-of-transaction), one shard
  /// latch per touched shard, and resets the cache. The statistics
  /// counters survive so they can be harvested afterwards.
  void ReleaseAll();

  bool attached() const { return mgr_ != nullptr; }
  TxnId txn() const { return txn_; }
  /// Distinct objects currently held (cache size).
  size_t held() const { return held_.size(); }

  // --- thread-private statistics (harvested into TxnCounters) -------------
  /// Lock requests that had to park in the shared table.
  uint64_t waits() const { return waits_; }
  /// Requests served entirely from the private cache.
  uint64_t cache_hits() const { return cache_hits_; }
  /// Row→store escalations performed through this handle.
  uint64_t escalations() const { return escalations_; }

 private:
  friend class LockManager;

  TxnLockList(LockManager* mgr, TxnId txn);

  LockManager* mgr_ = nullptr;
  TxnId txn_ = kInvalidTxnId;
  /// Cache of held modes; exact, because every acquisition goes through
  /// this handle and locks drop only at ReleaseAll (strict 2PL).
  std::unordered_map<LockId, LockMode, LockIdHash> held_;
  /// Held lock ids grouped by shard, in acquisition order (ReleaseAll
  /// walks each group newest-first under one shard latch).
  std::vector<std::vector<LockId>> shard_ids_;
  /// Row locks taken per store — drives escalation.
  std::unordered_map<StoreId, uint32_t> row_counts_;
  /// Stores where this transaction escalated to a store-level lock.
  std::unordered_set<StoreId> escalated_;
  uint64_t waits_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t escalations_ = 0;
};

}  // namespace shoremt::lock

#endif  // SHOREMT_LOCK_TXN_LOCK_LIST_H_
