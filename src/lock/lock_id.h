#ifndef SHOREMT_LOCK_LOCK_ID_H_
#define SHOREMT_LOCK_LOCK_ID_H_

#include <cstdint>
#include <functional>

#include "common/types.h"

namespace shoremt::lock {

/// Level of an object in the locking hierarchy: volume → store → record.
/// (Like Shore-MT we lock rows, not pages; page integrity is the latch
/// layer's job.)
enum class LockLevel : uint8_t {
  kVolume = 0,
  kStore,
  kRecord,
};

/// Identifier of a lockable object.
struct LockId {
  LockLevel level = LockLevel::kVolume;
  StoreId store = kInvalidStoreId;
  PageNum page = kInvalidPageNum;  ///< Record locks: the record's page.
  uint16_t slot = 0;               ///< Record locks: the record's slot.

  static LockId Volume() { return LockId{}; }
  static LockId Store(StoreId s) {
    return LockId{LockLevel::kStore, s, kInvalidPageNum, 0};
  }
  static LockId Record(StoreId s, RecordId rid) {
    return LockId{LockLevel::kRecord, s, rid.page, rid.slot};
  }

  /// Parent object in the hierarchy (volume is its own parent).
  LockId Parent() const {
    switch (level) {
      case LockLevel::kRecord:
        return Store(store);
      case LockLevel::kStore:
      case LockLevel::kVolume:
        return Volume();
    }
    return Volume();
  }

  friend bool operator==(const LockId&, const LockId&) = default;
};

struct LockIdHash {
  size_t operator()(const LockId& id) const noexcept {
    uint64_t h = static_cast<uint64_t>(id.level);
    h = h * 0x9e3779b97f4a7c15ULL + id.store;
    h = h * 0x9e3779b97f4a7c15ULL + id.page;
    h = h * 0x9e3779b97f4a7c15ULL + id.slot;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

}  // namespace shoremt::lock

#endif  // SHOREMT_LOCK_LOCK_ID_H_
