#ifndef SHOREMT_LOCK_LOCK_MANAGER_H_
#define SHOREMT_LOCK_LOCK_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "lock/lock_id.h"
#include "lock/lock_mode.h"
#include "lock/request_pool.h"

namespace shoremt::lock {

class TxnLockList;

/// How deadlocks are resolved.
enum class DeadlockPolicy : uint8_t {
  /// Waits simply expire (timeout-based detection, as in many production
  /// engines and the original system).
  kTimeoutOnly,
  /// Maintain a waits-for graph and abort the requester that closes a
  /// cycle immediately (no waiting out the timeout). The timeout remains
  /// as a backstop. The graph is partitioned per shard; cycle checks run
  /// over a global epoch-stamped merge of the partitions.
  kWaitsForGraph,
};

/// Lock manager configuration; defaults = Shore-MT "final" extended with
/// the sharded table. The baseline presets flip `per_shard_latch` off (the
/// paper found Shore's per-bucket support "statically disabled by a single
/// #define", §7.5), pin `shards` to 1, and use the mutex-protected request
/// pool.
struct LockOptions {
  /// Each shard latches independently; off = one global mutex serializes
  /// the whole table (the pre-§7.5 configuration).
  bool per_shard_latch = true;
  RequestPoolKind pool_kind = RequestPoolKind::kLockFreeStack;
  /// Number of table shards; 0 = one per hardware context (clamped to
  /// [1, 64]). Each shard owns its hash of lock heads, its request pool,
  /// its condition variable, and its waits-for partition.
  size_t shards = 0;
  /// Request-pool capacity PER SHARD (the single global pool was an
  /// allocation funnel; pools are now sized and owned per shard).
  /// 0 = auto: at least the classic 64Ki-request total envelope,
  /// max(8Ki, 64Ki / shards) per shard — so a single-shard table keeps
  /// the old capacity and a many-shard table spreads it out.
  uint32_t pool_capacity = 0;
  /// Lock-wait budget; expiry is treated as a deadlock verdict.
  uint64_t timeout_us = 500'000;
  DeadlockPolicy deadlock_policy = DeadlockPolicy::kTimeoutOnly;
  /// Row locks per store before a transaction's handle escalates to a
  /// store-level lock (escalation lives in the lock layer now — the
  /// handle carries the per-store counters).
  uint32_t escalation_threshold = 1000;
  bool enable_escalation = true;
};

struct LockStats {
  std::atomic<uint64_t> acquired{0};
  std::atomic<uint64_t> waits{0};
  std::atomic<uint64_t> timeouts{0};
  std::atomic<uint64_t> upgrades{0};
  std::atomic<uint64_t> releases{0};
  std::atomic<uint64_t> cycles_detected{0};
  std::atomic<uint64_t> escalations{0};
  /// ReleaseAll calls (each touches every shard the txn used exactly
  /// once, regardless of how many locks it held there).
  std::atomic<uint64_t> bulk_releases{0};
};

/// Transaction-duration lock table (§2.2.3): hierarchical modes, FIFO
/// queuing with upgrade priority, and timeout-based deadlock resolution —
/// split into per-core shards (§7.5 extended). Each shard owns its hash of
/// lock heads, its pre-allocated request pool, its condition variable and
/// its waits-for partition, so disjoint traffic never shares a cache line
/// and a drained pool in one shard cannot starve another.
///
/// All acquisition goes through a per-transaction TxnLockList handle
/// (txn_lock_list.h), vended by Attach(): the handle's private cache of
/// held modes absorbs re-grants (the overwhelmingly common case for
/// volume/store intents) without touching the shared table, and records
/// each lock's shard so ReleaseAll drops everything with one latch
/// acquisition per touched shard instead of per-id probes.
class LockManager {
 public:
  explicit LockManager(LockOptions options);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Vends the per-transaction lock handle — the only way to acquire
  /// locks. The handle must not outlive the manager; a transaction's
  /// handle is used by one thread at a time (the storage-manager
  /// threading model).
  TxnLockList Attach(TxnId txn);

  /// The mode `txn` currently holds on `id` in the shared table (kNone if
  /// none). Diagnostics/tests: the hot path answers this from the
  /// transaction's private cache (TxnLockList::HeldMode) for free.
  LockMode HeldMode(TxnId txn, const LockId& id) const;

  /// Number of distinct objects currently locked (diagnostics).
  size_t LockedObjectCount() const;

  /// The shard `id` hashes to (stable for the manager's lifetime).
  size_t ShardIndex(const LockId& id) const {
    return LockIdHash()(id) % shards_.size();
  }
  size_t shard_count() const { return shards_.size(); }

  const LockStats& stats() const { return stats_; }
  const LockOptions& options() const { return options_; }

 private:
  friend class TxnLockList;

  struct LockHead {
    LockId id;
    std::vector<uint32_t> granted;  ///< Request pool indices (this shard).
    std::deque<uint32_t> waiting;
  };

  /// One table shard: heads, request pool, parking and waits-for state.
  struct Shard {
    Shard(RequestPoolKind kind, uint32_t capacity) : pool(kind, capacity) {}
    mutable std::mutex mutex;  ///< Used when per_shard_latch is on.
    std::condition_variable cv;
    std::unordered_map<LockId, LockHead, LockIdHash> heads;
    RequestPool pool;
    /// Waits-for partition: edges whose waiter parked in this shard.
    mutable std::mutex wfg_mutex;
    std::unordered_map<TxnId, std::vector<TxnId>> waits_for;
  };

  Shard& ShardFor(const LockId& id) { return *shards_[ShardIndex(id)]; }
  const Shard& ShardFor(const LockId& id) const {
    return *shards_[ShardIndex(id)];
  }

  /// The mutex guarding `shard` under the current latching strategy.
  std::mutex& MutexFor(Shard& shard) {
    return options_.per_shard_latch ? shard.mutex : global_mutex_;
  }

  /// Acquires (or upgrades to) `mode` on `id` for `txn` in the shared
  /// table. Blocks up to the configured timeout; returns Deadlock on
  /// expiry, ResourceExhausted when the shard's request pool is drained
  /// (recoverable: abort and retry). `waits_out` is incremented once if
  /// the request had to park. Called by TxnLockList on cache miss.
  Status Acquire(TxnId txn, const LockId& id, LockMode mode,
                 uint64_t* waits_out);

  /// Releases every lock `handle` recorded, one latch acquisition per
  /// touched shard, waking grantable waiters per shard. Called by
  /// TxnLockList::ReleaseAll.
  void ReleaseAll(TxnLockList* handle);

  /// True if `mode` is compatible with every granted request on `head`,
  /// ignoring `self` (for upgrades).
  bool CompatibleWithGranted(const Shard& shard, const LockHead& head,
                             LockMode mode, uint32_t self) const;
  /// Wakes up grantable waiters at the queue front (upgrades first).
  void ProcessQueue(Shard& shard, LockHead& head);

  /// Waits-for maintenance (kWaitsForGraph policy). Registers `waiter` →
  /// each holder edge in `home`'s partition; returns false if doing so
  /// closes a cycle through `waiter` (nothing is then published). The
  /// check locks every partition in index order and queries an
  /// epoch-stamped merge of them, rebuilt only when some partition
  /// changed since the last check.
  bool AddWaitEdges(Shard& home, TxnId waiter, const LockHead& head,
                    uint32_t self);
  void RemoveWaitEdges(Shard& home, TxnId waiter);
  /// DFS over the merged waits-for graph: can `from` reach `target`?
  /// Caller holds every partition mutex.
  bool Reaches(TxnId from, TxnId target,
               std::unordered_map<TxnId, int>* visited) const;

  LockOptions options_;
  std::mutex global_mutex_;  ///< Used when per_shard_latch is off.
  std::vector<std::unique_ptr<Shard>> shards_;
  LockStats stats_;

  /// Bumped on every waits-for partition mutation; the merged graph below
  /// is rebuilt only when it advanced. Both are touched exclusively while
  /// holding ALL partition mutexes (cycle checks serialize on partition
  /// 0's mutex), so they need no lock of their own.
  std::atomic<uint64_t> wfg_epoch_{1};
  mutable uint64_t merged_epoch_ = 0;
  mutable std::unordered_map<TxnId, std::vector<TxnId>> merged_wfg_;
};

}  // namespace shoremt::lock

#endif  // SHOREMT_LOCK_LOCK_MANAGER_H_
