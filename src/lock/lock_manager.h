#ifndef SHOREMT_LOCK_LOCK_MANAGER_H_
#define SHOREMT_LOCK_LOCK_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "lock/lock_id.h"
#include "lock/lock_mode.h"
#include "lock/request_pool.h"

namespace shoremt::lock {

/// How deadlocks are resolved.
enum class DeadlockPolicy : uint8_t {
  /// Waits simply expire (timeout-based detection, as in many production
  /// engines and the original system).
  kTimeoutOnly,
  /// Maintain a waits-for graph and abort the requester that closes a
  /// cycle immediately (no waiting out the timeout). The timeout remains
  /// as a backstop.
  kWaitsForGraph,
};

/// Lock manager configuration; defaults = Shore-MT "final". The baseline
/// presets flip `per_bucket_latch` off (the paper found Shore's per-bucket
/// support "statically disabled by a single #define", §7.5) and use the
/// mutex-protected request pool.
struct LockOptions {
  bool per_bucket_latch = true;
  RequestPoolKind pool_kind = RequestPoolKind::kLockFreeStack;
  size_t buckets = 1024;
  uint32_t pool_capacity = 1 << 16;
  /// Lock-wait budget; expiry is treated as a deadlock verdict.
  uint64_t timeout_us = 500'000;
  DeadlockPolicy deadlock_policy = DeadlockPolicy::kTimeoutOnly;
};

struct LockStats {
  std::atomic<uint64_t> acquired{0};
  std::atomic<uint64_t> waits{0};
  std::atomic<uint64_t> timeouts{0};
  std::atomic<uint64_t> upgrades{0};
  std::atomic<uint64_t> releases{0};
  std::atomic<uint64_t> cycles_detected{0};
};

/// Transaction-duration lock table (§2.2.3): hierarchical modes, FIFO
/// queuing with upgrade priority, and timeout-based deadlock resolution.
/// Latches and lock-free structures protect the table itself; blocked
/// requesters park on per-bucket condition variables.
class LockManager {
 public:
  explicit LockManager(LockOptions options);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires (or upgrades to) `mode` on `id` for `txn`. Blocks up to the
  /// configured timeout; returns Deadlock on expiry. Re-acquiring an equal
  /// or weaker mode is a no-op. When `waits_out` is non-null it is
  /// incremented once if the request had to park — the hook per-session
  /// statistics use so worker threads never touch a shared counter on
  /// their own hot path.
  Status Lock(TxnId txn, const LockId& id, LockMode mode,
              uint64_t* waits_out = nullptr);

  /// Releases txn's lock on `id` (all modes).
  Status Unlock(TxnId txn, const LockId& id);

  /// The mode `txn` currently holds on `id` (kNone if none).
  LockMode HeldMode(TxnId txn, const LockId& id) const;

  /// Number of distinct objects currently locked (diagnostics).
  size_t LockedObjectCount() const;

  const LockStats& stats() const { return stats_; }
  const LockOptions& options() const { return options_; }

 private:
  struct LockHead {
    LockId id;
    std::vector<uint32_t> granted;  ///< Request pool indices.
    std::deque<uint32_t> waiting;
  };

  struct Bucket {
    mutable std::mutex mutex;  ///< Used when per_bucket_latch is on.
    std::condition_variable cv;
    std::unordered_map<LockId, LockHead, LockIdHash> heads;
  };

  Bucket& BucketFor(const LockId& id) {
    return buckets_[LockIdHash()(id) % buckets_.size()];
  }
  const Bucket& BucketFor(const LockId& id) const {
    return buckets_[LockIdHash()(id) % buckets_.size()];
  }

  /// The mutex guarding `bucket` under the current latching strategy.
  std::mutex& MutexFor(Bucket& bucket) {
    return options_.per_bucket_latch ? bucket.mutex : global_mutex_;
  }

  /// True if `mode` is compatible with every granted request on `head`,
  /// ignoring `self` (for upgrades).
  bool CompatibleWithGranted(const LockHead& head, LockMode mode,
                             uint32_t self) const;
  /// Wakes up grantable waiters at the queue front (upgrades first).
  void ProcessQueue(Bucket& bucket, LockHead& head);

  /// Waits-for graph maintenance (kWaitsForGraph policy). Registers
  /// `waiter` → each holder edge; returns false if doing so closes a
  /// cycle through `waiter` (the edges are then rolled back).
  bool AddWaitEdges(TxnId waiter, const LockHead& head, uint32_t self);
  void RemoveWaitEdges(TxnId waiter);
  /// DFS over the waits-for graph: can `from` reach `target`?
  bool Reaches(TxnId from, TxnId target,
               std::unordered_map<TxnId, int>* visited) const;

  LockOptions options_;
  std::mutex global_mutex_;  ///< Used when per_bucket_latch is off.
  std::vector<Bucket> buckets_;
  mutable RequestPool pool_;
  LockStats stats_;

  mutable std::mutex wfg_mutex_;
  std::unordered_map<TxnId, std::vector<TxnId>> waits_for_;
};

}  // namespace shoremt::lock

#endif  // SHOREMT_LOCK_LOCK_MANAGER_H_
