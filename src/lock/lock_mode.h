#ifndef SHOREMT_LOCK_LOCK_MODE_H_
#define SHOREMT_LOCK_LOCK_MODE_H_

#include <cstdint>
#include <string_view>

namespace shoremt::lock {

/// Hierarchical lock modes (§2.2.3). Intention modes (IS/IX) are taken on
/// ancestors of the actually-locked object; SIX = S + IX (read all, write
/// some).
enum class LockMode : uint8_t {
  kNone = 0,
  kIS,
  kIX,
  kS,
  kSIX,
  kX,
};

/// True when a holder in `held` coexists with a requester in `requested`.
constexpr bool Compatible(LockMode held, LockMode requested) {
  // Standard multigranularity compatibility matrix.
  constexpr bool kCompat[6][6] = {
      // held\req none   IS     IX     S      SIX    X
      /* none */ {true, true, true, true, true, true},
      /* IS  */ {true, true, true, true, true, false},
      /* IX  */ {true, true, true, false, false, false},
      /* S   */ {true, true, false, true, false, false},
      /* SIX */ {true, true, false, false, false, false},
      /* X   */ {true, false, false, false, false, false},
  };
  return kCompat[static_cast<int>(held)][static_cast<int>(requested)];
}

/// Least upper bound of two modes (the mode an upgrade must reach).
constexpr LockMode Supremum(LockMode a, LockMode b) {
  if (a == b) return a;
  // Order by strength where a chain exists; S and IX join at SIX.
  auto rank = [](LockMode m) {
    switch (m) {
      case LockMode::kNone: return 0;
      case LockMode::kIS: return 1;
      case LockMode::kIX: return 2;
      case LockMode::kS: return 2;
      case LockMode::kSIX: return 3;
      case LockMode::kX: return 4;
    }
    return 0;
  };
  if ((a == LockMode::kS && b == LockMode::kIX) ||
      (a == LockMode::kIX && b == LockMode::kS)) {
    return LockMode::kSIX;
  }
  if (rank(a) == rank(b)) return LockMode::kSIX;  // S vs IX handled above.
  return rank(a) > rank(b) ? a : b;
}

/// The intention mode an ancestor must hold for a child locked in `mode`.
constexpr LockMode IntentionFor(LockMode mode) {
  switch (mode) {
    case LockMode::kS:
    case LockMode::kIS:
      return LockMode::kIS;
    case LockMode::kX:
    case LockMode::kIX:
    case LockMode::kSIX:
      return LockMode::kIX;
    case LockMode::kNone:
      return LockMode::kNone;
  }
  return LockMode::kNone;
}

constexpr std::string_view LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kNone: return "N";
    case LockMode::kIS: return "IS";
    case LockMode::kIX: return "IX";
    case LockMode::kS: return "S";
    case LockMode::kSIX: return "SIX";
    case LockMode::kX: return "X";
  }
  return "?";
}

}  // namespace shoremt::lock

#endif  // SHOREMT_LOCK_LOCK_MODE_H_
