#include "lock/txn_lock_list.h"

namespace shoremt::lock {

TxnLockList::TxnLockList(LockManager* mgr, TxnId txn)
    : mgr_(mgr), txn_(txn), shard_ids_(mgr->shard_count()) {}

Status TxnLockList::Lock(const LockId& id, LockMode mode) {
  if (mgr_ == nullptr) {
    return Status::InvalidArgument("detached lock handle");
  }
  auto it = held_.find(id);
  if (it != held_.end() && Supremum(it->second, mode) == it->second) {
    // Equal-or-weaker re-request: the held mode already covers it. This
    // is every volume/store intention re-grant after the first row
    // operation — served without touching the shared table.
    ++cache_hits_;
    return Status::Ok();
  }
  SHOREMT_RETURN_NOT_OK(mgr_->Acquire(txn_, id, mode, &waits_));
  if (it != held_.end()) {
    // Upgrade: the table granted Supremum(held, mode); mirror it.
    it->second = Supremum(it->second, mode);
  } else {
    held_.emplace(id, mode);
    shard_ids_[mgr_->ShardIndex(id)].push_back(id);
  }
  return Status::Ok();
}

Status TxnLockList::LockStore(StoreId store, LockMode mode) {
  LockMode vol_mode = IntentionFor(mode);
  if (vol_mode != LockMode::kNone) {
    SHOREMT_RETURN_NOT_OK(Lock(LockId::Volume(), vol_mode));
  }
  return Lock(LockId::Store(store), mode);
}

Status TxnLockList::LockRecord(StoreId store, RecordId rid, LockMode mode) {
  if (mgr_ == nullptr) {
    return Status::InvalidArgument("detached lock handle");
  }
  LockMode store_mode = (mode == LockMode::kS) ? LockMode::kS : LockMode::kX;
  // After escalation the store-level lock covers every record — but only
  // in the mode it was escalated to: the first write after a
  // read-escalation must strengthen the store lock (S → X), or a
  // concurrent reader compatible with store-S could be overwritten
  // unseen.
  if (escalated_.contains(store)) {
    LockMode held_store = HeldMode(LockId::Store(store));
    if (Supremum(held_store, store_mode) == held_store) {
      ++cache_hits_;
      return Status::Ok();
    }
    return LockStore(store, store_mode);  // Upgrade; may wait or deadlock.
  }
  const LockOptions& opts = mgr_->options();
  if (opts.enable_escalation &&
      row_counts_[store] >= opts.escalation_threshold) {
    Status st = LockStore(store, store_mode);
    if (st.ok()) {
      escalated_.insert(store);
      ++escalations_;
      mgr_->stats_.escalations.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    }
    // Escalation denied (someone else holds rows): fall through to the
    // plain row lock.
  }
  LockMode intent = IntentionFor(mode);
  SHOREMT_RETURN_NOT_OK(Lock(LockId::Volume(), intent));
  SHOREMT_RETURN_NOT_OK(Lock(LockId::Store(store), intent));
  SHOREMT_RETURN_NOT_OK(Lock(LockId::Record(store, rid), mode));
  ++row_counts_[store];
  return Status::Ok();
}

void TxnLockList::ReleaseAll() {
  if (mgr_ == nullptr || held_.empty()) {
    held_.clear();
    row_counts_.clear();
    escalated_.clear();
    return;
  }
  mgr_->ReleaseAll(this);
  held_.clear();
  for (auto& ids : shard_ids_) ids.clear();
  row_counts_.clear();
  escalated_.clear();
}

}  // namespace shoremt::lock
