#include "lock/lock_manager.h"

#include <chrono>

namespace shoremt::lock {

LockManager::LockManager(LockOptions options)
    : options_(options),
      buckets_(options.buckets),
      pool_(options.pool_kind, options.pool_capacity) {}

bool LockManager::CompatibleWithGranted(const LockHead& head, LockMode mode,
                                        uint32_t self) const {
  for (uint32_t g : head.granted) {
    if (g == self) continue;
    if (!Compatible(pool_[g].mode, mode)) return false;
  }
  return true;
}

void LockManager::ProcessQueue(Bucket& bucket, LockHead& head) {
  // Strict FIFO with upgrade priority (upgrades are enqueued at the
  // front): grant from the head of the queue until the first request that
  // must keep waiting.
  while (!head.waiting.empty()) {
    uint32_t idx = head.waiting.front();
    LockRequest& req = pool_[idx];
    if (req.is_upgrade) {
      // Find the requester's granted entry and try to strengthen it.
      uint32_t self = UINT32_MAX;
      for (uint32_t g : head.granted) {
        if (pool_[g].txn == req.txn) {
          self = g;
          break;
        }
      }
      if (self == UINT32_MAX) {
        // Holder vanished (aborted): drop the stale upgrade request.
        head.waiting.pop_front();
        pool_.Release(idx);
        continue;
      }
      if (!CompatibleWithGranted(head, req.convert_to, self)) return;
      pool_[self].mode = req.convert_to;
      head.waiting.pop_front();
      req.granted = true;  // Waiter observes success and frees the slot.
      continue;
    }
    if (!CompatibleWithGranted(head, req.mode, UINT32_MAX)) return;
    head.waiting.pop_front();
    req.granted = true;
    head.granted.push_back(idx);
  }
}

bool LockManager::Reaches(TxnId from, TxnId target,
                          std::unordered_map<TxnId, int>* visited) const {
  if (from == target) return true;
  auto [it, inserted] = visited->emplace(from, 1);
  if (!inserted) return false;  // Already explored.
  auto edges = waits_for_.find(from);
  if (edges == waits_for_.end()) return false;
  for (TxnId next : edges->second) {
    if (Reaches(next, target, visited)) return true;
  }
  return false;
}

bool LockManager::AddWaitEdges(TxnId waiter, const LockHead& head,
                               uint32_t self) {
  std::lock_guard<std::mutex> guard(wfg_mutex_);
  std::vector<TxnId> holders;
  for (uint32_t g : head.granted) {
    if (g == self) continue;
    TxnId holder = pool_[g].txn;
    if (holder != waiter) holders.push_back(holder);
  }
  // Would any holder (transitively) wait on us? Then this edge closes a
  // cycle and the requester is the victim.
  for (TxnId holder : holders) {
    std::unordered_map<TxnId, int> visited;
    if (Reaches(holder, waiter, &visited)) {
      stats_.cycles_detected.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  waits_for_[waiter] = std::move(holders);
  return true;
}

void LockManager::RemoveWaitEdges(TxnId waiter) {
  std::lock_guard<std::mutex> guard(wfg_mutex_);
  waits_for_.erase(waiter);
}

Status LockManager::Lock(TxnId txn, const LockId& id, LockMode mode,
                         uint64_t* waits_out) {
  if (txn == kInvalidTxnId || mode == LockMode::kNone) {
    return Status::InvalidArgument("bad lock request");
  }
  Bucket& bucket = BucketFor(id);
  std::unique_lock<std::mutex> lk(MutexFor(bucket));
  LockHead& head = bucket.heads[id];
  head.id = id;

  // Re-request or upgrade?
  for (uint32_t g : head.granted) {
    if (pool_[g].txn != txn) continue;
    LockMode needed = Supremum(pool_[g].mode, mode);
    if (needed == pool_[g].mode) {
      stats_.acquired.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    }
    if (head.waiting.empty() && CompatibleWithGranted(head, needed, g)) {
      pool_[g].mode = needed;
      stats_.upgrades.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    }
    // Upgrade must wait — at the front of the queue, ahead of new locks.
    auto slot = pool_.Acquire();
    if (!slot) return Status::Busy("lock request pool exhausted");
    LockRequest& req = pool_[*slot];
    req.txn = txn;
    req.mode = pool_[g].mode;
    req.convert_to = needed;
    req.is_upgrade = true;
    head.waiting.push_front(*slot);
    stats_.waits.fetch_add(1, std::memory_order_relaxed);
    if (waits_out != nullptr) ++*waits_out;
    if (options_.deadlock_policy == DeadlockPolicy::kWaitsForGraph &&
        !AddWaitEdges(txn, head, g)) {
      head.waiting.pop_front();
      pool_.Release(*slot);
      return Status::Deadlock("waits-for cycle (upgrade victim)");
    }
    bool granted = bucket.cv.wait_for(
        lk, std::chrono::microseconds(options_.timeout_us),
        [&] { return pool_[*slot].granted; });
    if (options_.deadlock_policy == DeadlockPolicy::kWaitsForGraph) {
      RemoveWaitEdges(txn);
    }
    if (granted) {
      pool_.Release(*slot);
      stats_.upgrades.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    }
    for (size_t i = 0; i < head.waiting.size(); ++i) {
      if (head.waiting[i] == *slot) {
        head.waiting.erase(head.waiting.begin() + static_cast<long>(i));
        break;
      }
    }
    pool_.Release(*slot);
    stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
    // Our queue slot may have been blocking others; re-drain and wake.
    ProcessQueue(bucket, head);
    bucket.cv.notify_all();
    return Status::Deadlock("upgrade timed out (deadlock victim)");
  }

  // Fresh request.
  auto slot = pool_.Acquire();
  if (!slot) return Status::Busy("lock request pool exhausted");
  LockRequest& req = pool_[*slot];
  req.txn = txn;
  req.mode = mode;
  if (head.waiting.empty() && CompatibleWithGranted(head, mode, UINT32_MAX)) {
    req.granted = true;
    head.granted.push_back(*slot);
    stats_.acquired.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  head.waiting.push_back(*slot);
  stats_.waits.fetch_add(1, std::memory_order_relaxed);
  if (waits_out != nullptr) ++*waits_out;
  if (options_.deadlock_policy == DeadlockPolicy::kWaitsForGraph &&
      !AddWaitEdges(txn, head, UINT32_MAX)) {
    head.waiting.pop_back();
    pool_.Release(*slot);
    return Status::Deadlock("waits-for cycle (victim)");
  }
  bool granted =
      bucket.cv.wait_for(lk, std::chrono::microseconds(options_.timeout_us),
                         [&] { return pool_[*slot].granted; });
  if (options_.deadlock_policy == DeadlockPolicy::kWaitsForGraph) {
    RemoveWaitEdges(txn);
  }
  if (granted) {
    stats_.acquired.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  for (size_t i = 0; i < head.waiting.size(); ++i) {
    if (head.waiting[i] == *slot) {
      head.waiting.erase(head.waiting.begin() + static_cast<long>(i));
      break;
    }
  }
  pool_.Release(*slot);
  stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
  ProcessQueue(bucket, head);
  bucket.cv.notify_all();
  return Status::Deadlock("lock wait timed out (deadlock victim)");
}

Status LockManager::Unlock(TxnId txn, const LockId& id) {
  Bucket& bucket = BucketFor(id);
  std::unique_lock<std::mutex> lk(MutexFor(bucket));
  auto it = bucket.heads.find(id);
  if (it == bucket.heads.end()) return Status::NotFound("object not locked");
  LockHead& head = it->second;
  bool removed = false;
  for (size_t i = 0; i < head.granted.size(); ++i) {
    if (pool_[head.granted[i]].txn == txn) {
      pool_.Release(head.granted[i]);
      head.granted.erase(head.granted.begin() + static_cast<long>(i));
      removed = true;
      break;
    }
  }
  if (!removed) return Status::NotFound("txn holds no lock on object");
  stats_.releases.fetch_add(1, std::memory_order_relaxed);
  ProcessQueue(bucket, head);
  if (head.granted.empty() && head.waiting.empty()) {
    bucket.heads.erase(it);
  }
  bucket.cv.notify_all();
  return Status::Ok();
}

LockMode LockManager::HeldMode(TxnId txn, const LockId& id) const {
  auto& self = const_cast<LockManager&>(*this);
  Bucket& bucket = self.BucketFor(id);
  std::unique_lock<std::mutex> lk(self.MutexFor(bucket));
  auto it = bucket.heads.find(id);
  if (it == bucket.heads.end()) return LockMode::kNone;
  for (uint32_t g : it->second.granted) {
    if (pool_[g].txn == txn) return pool_[g].mode;
  }
  return LockMode::kNone;
}

size_t LockManager::LockedObjectCount() const {
  auto& self = const_cast<LockManager&>(*this);
  size_t n = 0;
  for (Bucket& b : self.buckets_) {
    std::unique_lock<std::mutex> lk(self.MutexFor(b));
    n += b.heads.size();
  }
  return n;
}

}  // namespace shoremt::lock
