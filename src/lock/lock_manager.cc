#include "lock/lock_manager.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "lock/txn_lock_list.h"

namespace shoremt::lock {

namespace {

size_t ResolveShardCount(size_t requested) {
  if (requested > 0) return std::min<size_t>(requested, 256);
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min<size_t>(hw, 64);
}

}  // namespace

LockManager::LockManager(LockOptions options) : options_(options) {
  size_t n = ResolveShardCount(options.shards);
  uint32_t capacity = options.pool_capacity;
  if (capacity == 0) {
    capacity = static_cast<uint32_t>(
        std::max<size_t>(size_t{1} << 13, (size_t{1} << 16) / n));
  }
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(options_.pool_kind, capacity));
  }
}

TxnLockList LockManager::Attach(TxnId txn) { return TxnLockList(this, txn); }

bool LockManager::CompatibleWithGranted(const Shard& shard,
                                        const LockHead& head, LockMode mode,
                                        uint32_t self) const {
  for (uint32_t g : head.granted) {
    if (g == self) continue;
    if (!Compatible(shard.pool[g].mode, mode)) return false;
  }
  return true;
}

void LockManager::ProcessQueue(Shard& shard, LockHead& head) {
  // Strict FIFO with upgrade priority (upgrades are enqueued at the
  // front): grant from the head of the queue until the first request that
  // must keep waiting.
  while (!head.waiting.empty()) {
    uint32_t idx = head.waiting.front();
    LockRequest& req = shard.pool[idx];
    if (req.is_upgrade) {
      // Find the requester's granted entry and try to strengthen it.
      uint32_t self = UINT32_MAX;
      for (uint32_t g : head.granted) {
        if (shard.pool[g].txn == req.txn) {
          self = g;
          break;
        }
      }
      if (self == UINT32_MAX) {
        // Holder vanished (aborted): drop the stale upgrade request.
        head.waiting.pop_front();
        shard.pool.Release(idx);
        continue;
      }
      if (!CompatibleWithGranted(shard, head, req.convert_to, self)) return;
      shard.pool[self].mode = req.convert_to;
      head.waiting.pop_front();
      req.granted = true;  // Waiter observes success and frees the slot.
      continue;
    }
    if (!CompatibleWithGranted(shard, head, req.mode, UINT32_MAX)) return;
    head.waiting.pop_front();
    req.granted = true;
    head.granted.push_back(idx);
  }
}

bool LockManager::Reaches(TxnId from, TxnId target,
                          std::unordered_map<TxnId, int>* visited) const {
  if (from == target) return true;
  auto [it, inserted] = visited->emplace(from, 1);
  if (!inserted) return false;  // Already explored.
  auto edges = merged_wfg_.find(from);
  if (edges == merged_wfg_.end()) return false;
  for (TxnId next : edges->second) {
    if (Reaches(next, target, visited)) return true;
  }
  return false;
}

bool LockManager::AddWaitEdges(Shard& home, TxnId waiter,
                               const LockHead& head, uint32_t self) {
  std::vector<TxnId> holders;
  for (uint32_t g : head.granted) {
    if (g == self) continue;
    TxnId holder = home.pool[g].txn;
    if (holder != waiter) holders.push_back(holder);
  }
  // Lock every partition in index order (shard mutexes are never acquired
  // while a wfg mutex is held, so the order is deadlock-free) and query a
  // consistent merged snapshot. Holding all partition mutexes serializes
  // cycle checks, which also makes the merge cache safe to touch.
  std::vector<std::unique_lock<std::mutex>> guards;
  guards.reserve(shards_.size());
  for (auto& s : shards_) guards.emplace_back(s->wfg_mutex);
  uint64_t epoch = wfg_epoch_.load(std::memory_order_relaxed);
  if (merged_epoch_ != epoch) {
    merged_wfg_.clear();
    for (auto& s : shards_) {
      for (const auto& [w, hs] : s->waits_for) {
        auto& dst = merged_wfg_[w];
        dst.insert(dst.end(), hs.begin(), hs.end());
      }
    }
    merged_epoch_ = epoch;
  }
  // Would any holder (transitively) wait on us? Then this edge closes a
  // cycle and the requester is the victim.
  for (TxnId holder : holders) {
    std::unordered_map<TxnId, int> visited;
    if (Reaches(holder, waiter, &visited)) {
      stats_.cycles_detected.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  // Publish into the partition AND mirror into the merged cache: we hold
  // every partition mutex, so no other mutator can interleave — stamping
  // the cache with the post-publish epoch keeps it hot for the next
  // check instead of invalidating it with our own edge.
  merged_wfg_[waiter] = holders;
  home.waits_for[waiter] = std::move(holders);
  merged_epoch_ = wfg_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  return true;
}

void LockManager::RemoveWaitEdges(Shard& home, TxnId waiter) {
  std::lock_guard<std::mutex> guard(home.wfg_mutex);
  if (home.waits_for.erase(waiter) > 0) {
    wfg_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
}

Status LockManager::Acquire(TxnId txn, const LockId& id, LockMode mode,
                            uint64_t* waits_out) {
  if (txn == kInvalidTxnId || mode == LockMode::kNone) {
    return Status::InvalidArgument("bad lock request");
  }
  Shard& shard = ShardFor(id);
  std::unique_lock<std::mutex> lk(MutexFor(shard));
  LockHead& head = shard.heads[id];
  head.id = id;

  // Re-request or upgrade? (The handle cache absorbs equal-or-weaker
  // re-requests before this point; reaching here with an entry means a
  // genuine upgrade, or a raw re-probe from diagnostics.)
  for (uint32_t g : head.granted) {
    if (shard.pool[g].txn != txn) continue;
    LockMode needed = Supremum(shard.pool[g].mode, mode);
    if (needed == shard.pool[g].mode) {
      stats_.acquired.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    }
    if (head.waiting.empty() &&
        CompatibleWithGranted(shard, head, needed, g)) {
      shard.pool[g].mode = needed;
      stats_.upgrades.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    }
    // Upgrade must wait — at the front of the queue, ahead of new locks.
    auto slot = shard.pool.Acquire();
    if (!slot) {
      return Status::ResourceExhausted("lock request pool exhausted (shard)");
    }
    LockRequest& req = shard.pool[*slot];
    req.txn = txn;
    req.mode = shard.pool[g].mode;
    req.convert_to = needed;
    req.is_upgrade = true;
    head.waiting.push_front(*slot);
    stats_.waits.fetch_add(1, std::memory_order_relaxed);
    if (waits_out != nullptr) ++*waits_out;
    if (options_.deadlock_policy == DeadlockPolicy::kWaitsForGraph &&
        !AddWaitEdges(shard, txn, head, g)) {
      head.waiting.pop_front();
      shard.pool.Release(*slot);
      return Status::Deadlock("waits-for cycle (upgrade victim)");
    }
    bool granted = shard.cv.wait_for(
        lk, std::chrono::microseconds(options_.timeout_us),
        [&] { return shard.pool[*slot].granted; });
    if (options_.deadlock_policy == DeadlockPolicy::kWaitsForGraph) {
      RemoveWaitEdges(shard, txn);
    }
    if (granted) {
      shard.pool.Release(*slot);
      stats_.upgrades.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    }
    for (size_t i = 0; i < head.waiting.size(); ++i) {
      if (head.waiting[i] == *slot) {
        head.waiting.erase(head.waiting.begin() + static_cast<long>(i));
        break;
      }
    }
    shard.pool.Release(*slot);
    stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
    // Our queue slot may have been blocking others; re-drain and wake.
    ProcessQueue(shard, head);
    shard.cv.notify_all();
    return Status::Deadlock("upgrade timed out (deadlock victim)");
  }

  // Fresh request.
  auto slot = shard.pool.Acquire();
  if (!slot) {
    // Exhaustion is an expected, recoverable path: drop the head the
    // heads[id] probe above may have just created, or retry-heavy
    // workloads over fresh ids would grow the map unboundedly.
    if (head.granted.empty() && head.waiting.empty()) shard.heads.erase(id);
    return Status::ResourceExhausted("lock request pool exhausted (shard)");
  }
  LockRequest& req = shard.pool[*slot];
  req.txn = txn;
  req.mode = mode;
  if (head.waiting.empty() &&
      CompatibleWithGranted(shard, head, mode, UINT32_MAX)) {
    req.granted = true;
    head.granted.push_back(*slot);
    stats_.acquired.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  head.waiting.push_back(*slot);
  stats_.waits.fetch_add(1, std::memory_order_relaxed);
  if (waits_out != nullptr) ++*waits_out;
  if (options_.deadlock_policy == DeadlockPolicy::kWaitsForGraph &&
      !AddWaitEdges(shard, txn, head, UINT32_MAX)) {
    head.waiting.pop_back();
    shard.pool.Release(*slot);
    return Status::Deadlock("waits-for cycle (victim)");
  }
  bool granted =
      shard.cv.wait_for(lk, std::chrono::microseconds(options_.timeout_us),
                        [&] { return shard.pool[*slot].granted; });
  if (options_.deadlock_policy == DeadlockPolicy::kWaitsForGraph) {
    RemoveWaitEdges(shard, txn);
  }
  if (granted) {
    stats_.acquired.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  for (size_t i = 0; i < head.waiting.size(); ++i) {
    if (head.waiting[i] == *slot) {
      head.waiting.erase(head.waiting.begin() + static_cast<long>(i));
      break;
    }
  }
  shard.pool.Release(*slot);
  stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
  ProcessQueue(shard, head);
  shard.cv.notify_all();
  return Status::Deadlock("lock wait timed out (deadlock victim)");
}

void LockManager::ReleaseAll(TxnLockList* handle) {
  uint64_t released = 0;
  for (size_t si = 0; si < shards_.size(); ++si) {
    const std::vector<LockId>& ids = handle->shard_ids_[si];
    if (ids.empty()) continue;
    Shard& shard = *shards_[si];
    std::unique_lock<std::mutex> lk(MutexFor(shard));
    // Newest first (strict 2PL: everything goes at once anyway).
    for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
      auto hit = shard.heads.find(*it);
      if (hit == shard.heads.end()) continue;
      LockHead& head = hit->second;
      for (size_t i = 0; i < head.granted.size(); ++i) {
        if (shard.pool[head.granted[i]].txn == handle->txn_) {
          shard.pool.Release(head.granted[i]);
          head.granted.erase(head.granted.begin() + static_cast<long>(i));
          ++released;
          break;
        }
      }
      ProcessQueue(shard, head);
      if (head.granted.empty() && head.waiting.empty()) {
        shard.heads.erase(hit);
      }
    }
    shard.cv.notify_all();
  }
  stats_.releases.fetch_add(released, std::memory_order_relaxed);
  stats_.bulk_releases.fetch_add(1, std::memory_order_relaxed);
}

LockMode LockManager::HeldMode(TxnId txn, const LockId& id) const {
  auto& self = const_cast<LockManager&>(*this);
  Shard& shard = self.ShardFor(id);
  std::unique_lock<std::mutex> lk(self.MutexFor(shard));
  auto it = shard.heads.find(id);
  if (it == shard.heads.end()) return LockMode::kNone;
  for (uint32_t g : it->second.granted) {
    if (shard.pool[g].txn == txn) return shard.pool[g].mode;
  }
  return LockMode::kNone;
}

size_t LockManager::LockedObjectCount() const {
  auto& self = const_cast<LockManager&>(*this);
  size_t n = 0;
  for (auto& s : self.shards_) {
    std::unique_lock<std::mutex> lk(self.MutexFor(*s));
    n += s->heads.size();
  }
  return n;
}

}  // namespace shoremt::lock
