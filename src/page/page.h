#ifndef SHOREMT_PAGE_PAGE_H_
#define SHOREMT_PAGE_PAGE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/crc32c.h"
#include "common/types.h"

namespace shoremt::page {

/// Role of a page within the volume.
enum class PageType : uint8_t {
  kFree = 0,       ///< Unallocated.
  kVolumeHeader,   ///< Page 0: volume metadata.
  kStoreDirectory, ///< Serialized store directory / extent map.
  kData,           ///< Heap data page (slotted records).
  kBTreeLeaf,      ///< B+Tree leaf node.
  kBTreeInternal,  ///< B+Tree internal node.
};

/// Fixed header at the start of every page. Plain bytes so a page image is
/// directly serializable; all multi-byte fields are host-endian (volumes
/// are not portable across endianness, as in the original Shore).
struct PageHeader {
  uint32_t magic;          ///< kPageMagic; guards against stray buffers.
  PageType type;           ///< Page role.
  uint8_t reserved;        ///< Padding.
  uint16_t slot_count;     ///< Number of slot directory entries.
  PageNum page_num;        ///< Self page number (integrity checking).
  StoreId store;           ///< Owning store, kInvalidStoreId if none.
  uint32_t free_begin;     ///< Offset where record heap space begins.
  uint64_t page_lsn;       ///< LSN of the last update applied (WAL rule).
  PageNum next_page;       ///< Intra-store page chain (heap file order).
  PageNum prev_page;       ///< Back link of the chain.
  uint32_t checksum;       ///< CRC32C of the whole image (this word as 0).
  uint32_t checksum_pad;   ///< Keeps the payload 8-byte aligned.
};

inline constexpr uint32_t kPageMagic = 0x53484f52;  // "SHOR"
static_assert(sizeof(PageHeader) == 56, "header layout is part of the format");
static_assert(offsetof(PageHeader, checksum) % alignof(uint32_t) == 0,
              "checksum word must be atomically addressable");

/// Usable bytes after the header.
inline constexpr size_t kPagePayload = kPageSize - sizeof(PageHeader);

/// Accessors for a raw page image. The buffer must be kPageSize bytes and
/// suitably aligned (frames in the buffer pool guarantee this).
inline PageHeader* HeaderOf(void* data) {
  return static_cast<PageHeader*>(data);
}
inline const PageHeader* HeaderOf(const void* data) {
  return static_cast<const PageHeader*>(data);
}

/// Zeroes the page and installs a fresh header.
inline void FormatPage(void* data, PageNum page_num, StoreId store,
                       PageType type) {
  std::memset(data, 0, kPageSize);
  PageHeader* h = HeaderOf(data);
  h->magic = kPageMagic;
  h->type = type;
  h->slot_count = 0;
  h->page_num = page_num;
  h->store = store;
  h->free_begin = sizeof(PageHeader);
  h->page_lsn = 0;
  h->next_page = kInvalidPageNum;
  h->prev_page = kInvalidPageNum;
}

/// Cheap structural validity check (magic + self page number).
inline bool PageLooksValid(const void* data, PageNum expected) {
  const PageHeader* h = HeaderOf(data);
  return h->magic == kPageMagic && h->page_num == expected;
}

/// CRC32C over the full page image with the in-header checksum word
/// treated as zero (the word is skipped, never read, so a concurrent
/// stamp of the same image cannot perturb the computation).
inline uint32_t ComputePageChecksum(const void* data) {
  constexpr size_t kOff = offsetof(PageHeader, checksum);
  static constexpr uint8_t kZeros[4] = {0, 0, 0, 0};
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = Crc32cExtend(0, p, kOff);
  crc = Crc32cExtend(crc, kZeros, 4);
  return Crc32cExtend(crc, p + kOff + 4, kPageSize - kOff - 4);
}

/// Stamps the image's checksum in place. Callers hold at least a shared
/// latch, so two stampers (cleaner + eviction) may race writing the SAME
/// value; the atomic_ref store keeps that benign race sanitizer-clean.
inline void StampPageChecksum(void* data) {
  uint32_t crc = ComputePageChecksum(data);
  std::atomic_ref<uint32_t>(HeaderOf(data)->checksum)
      .store(crc, std::memory_order_relaxed);
}

/// True when the stored checksum matches the image. A stored value of 0
/// means "unstamped" and passes vacuously: never-written pages (all
/// zeroes from Extend), images written to the volume directly (tests,
/// tools), and pre-checksum volumes all carry 0 — checksums protect only
/// images that went through the pool's write-back stamp. A stamped page
/// is protected everywhere: a bit flip anywhere outside the checksum
/// word (header, magic, payload) fails the compare. The 2^-32 case of a
/// real image whose CRC computes to 0 merely degrades that page to
/// unverified.
inline bool VerifyPageChecksum(const void* data) {
  const PageHeader* h = HeaderOf(data);
  uint32_t stored = std::atomic_ref<uint32_t>(
                        const_cast<uint32_t&>(h->checksum))
                        .load(std::memory_order_relaxed);
  if (stored == 0) return true;
  return stored == ComputePageChecksum(data);
}

}  // namespace shoremt::page

#endif  // SHOREMT_PAGE_PAGE_H_
