#ifndef SHOREMT_PAGE_PAGE_H_
#define SHOREMT_PAGE_PAGE_H_

#include <cstdint>
#include <cstring>

#include "common/types.h"

namespace shoremt::page {

/// Role of a page within the volume.
enum class PageType : uint8_t {
  kFree = 0,       ///< Unallocated.
  kVolumeHeader,   ///< Page 0: volume metadata.
  kStoreDirectory, ///< Serialized store directory / extent map.
  kData,           ///< Heap data page (slotted records).
  kBTreeLeaf,      ///< B+Tree leaf node.
  kBTreeInternal,  ///< B+Tree internal node.
};

/// Fixed header at the start of every page. Plain bytes so a page image is
/// directly serializable; all multi-byte fields are host-endian (volumes
/// are not portable across endianness, as in the original Shore).
struct PageHeader {
  uint32_t magic;          ///< kPageMagic; guards against stray buffers.
  PageType type;           ///< Page role.
  uint8_t reserved;        ///< Padding.
  uint16_t slot_count;     ///< Number of slot directory entries.
  PageNum page_num;        ///< Self page number (integrity checking).
  StoreId store;           ///< Owning store, kInvalidStoreId if none.
  uint32_t free_begin;     ///< Offset where record heap space begins.
  uint64_t page_lsn;       ///< LSN of the last update applied (WAL rule).
  PageNum next_page;       ///< Intra-store page chain (heap file order).
  PageNum prev_page;       ///< Back link of the chain.
};

inline constexpr uint32_t kPageMagic = 0x53484f52;  // "SHOR"
static_assert(sizeof(PageHeader) == 48, "header layout is part of the format");

/// Usable bytes after the header.
inline constexpr size_t kPagePayload = kPageSize - sizeof(PageHeader);

/// Accessors for a raw page image. The buffer must be kPageSize bytes and
/// suitably aligned (frames in the buffer pool guarantee this).
inline PageHeader* HeaderOf(void* data) {
  return static_cast<PageHeader*>(data);
}
inline const PageHeader* HeaderOf(const void* data) {
  return static_cast<const PageHeader*>(data);
}

/// Zeroes the page and installs a fresh header.
inline void FormatPage(void* data, PageNum page_num, StoreId store,
                       PageType type) {
  std::memset(data, 0, kPageSize);
  PageHeader* h = HeaderOf(data);
  h->magic = kPageMagic;
  h->type = type;
  h->slot_count = 0;
  h->page_num = page_num;
  h->store = store;
  h->free_begin = sizeof(PageHeader);
  h->page_lsn = 0;
  h->next_page = kInvalidPageNum;
  h->prev_page = kInvalidPageNum;
}

/// Cheap structural validity check (magic + self page number).
inline bool PageLooksValid(const void* data, PageNum expected) {
  const PageHeader* h = HeaderOf(data);
  return h->magic == kPageMagic && h->page_num == expected;
}

}  // namespace shoremt::page

#endif  // SHOREMT_PAGE_PAGE_H_
