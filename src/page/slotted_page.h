#ifndef SHOREMT_PAGE_SLOTTED_PAGE_H_
#define SHOREMT_PAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <span>

#include "common/status.h"
#include "common/types.h"
#include "page/page.h"

namespace shoremt::page {

/// Slotted-page view over a raw page image. Records grow upward from the
/// header; the slot directory grows downward from the page end. Deleting a
/// record tombstones its slot (slot numbers are stable so RecordIds stay
/// valid); space is reclaimed by compaction when an insert needs it.
///
/// Not internally synchronized: callers hold the page latch.
class SlottedPage {
 public:
  /// Wraps (does not initialize) the given page image.
  explicit SlottedPage(void* data) : data_(static_cast<uint8_t*>(data)) {}

  /// Formats the image as an empty slotted page.
  void Init(PageNum page_num, StoreId store, PageType type);

  PageHeader* header() { return HeaderOf(data_); }
  const PageHeader* header() const { return HeaderOf(data_); }

  /// Number of slots (including tombstones).
  uint16_t SlotCount() const { return header()->slot_count; }
  /// Number of live (non-tombstoned) records.
  uint16_t LiveCount() const;

  /// Bytes available for a new record (including its slot entry),
  /// assuming compaction.
  size_t FreeSpace() const;
  /// Whether a record of `size` bytes fits (possibly after compaction).
  bool Fits(size_t size) const;

  /// Inserts a record, returning its slot. Reuses tombstoned slots.
  Result<uint16_t> Insert(std::span<const uint8_t> payload);
  /// Inserts into a specific slot (used by recovery redo and replicated
  /// replay). The slot must be free (beyond slot_count or tombstoned); a
  /// gap up to `slot` is materialized as tombstones (commit-order replay
  /// can create slot k+1 before slot k).
  Status InsertAt(uint16_t slot, std::span<const uint8_t> payload);
  /// Reads the record in `slot`.
  Result<std::span<const uint8_t>> Read(uint16_t slot) const;
  /// Replaces the record in `slot`; may move it within the page.
  Status Update(uint16_t slot, std::span<const uint8_t> payload);
  /// Tombstones `slot`.
  Status Delete(uint16_t slot);
  /// True if `slot` holds a live record.
  bool IsLive(uint16_t slot) const;

  /// Defragments the record heap in place; slot numbers are preserved.
  void Compact();

  /// Maximum record payload a completely empty page can hold.
  static constexpr size_t MaxRecordSize() {
    return kPagePayload - sizeof(Slot);
  }

 private:
  /// Slot directory entry, stored from the end of the page downward.
  struct Slot {
    uint16_t offset;  ///< Byte offset of the record; 0 = tombstone.
    uint16_t length;  ///< Record length in bytes.
  };

  Slot* SlotAt(uint16_t index);
  const Slot* SlotAt(uint16_t index) const;
  /// Contiguous free bytes between the record heap top and the slot
  /// directory bottom (without compaction).
  size_t ContiguousFree() const;
  /// Sum of tombstoned record bytes (reclaimable by compaction).
  size_t DeadBytes() const;

  uint8_t* data_;
};

}  // namespace shoremt::page

#endif  // SHOREMT_PAGE_SLOTTED_PAGE_H_
