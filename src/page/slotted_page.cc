#include "page/slotted_page.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace shoremt::page {

void SlottedPage::Init(PageNum page_num, StoreId store, PageType type) {
  FormatPage(data_, page_num, store, type);
}

SlottedPage::Slot* SlottedPage::SlotAt(uint16_t index) {
  return reinterpret_cast<Slot*>(data_ + kPageSize) - (index + 1);
}

const SlottedPage::Slot* SlottedPage::SlotAt(uint16_t index) const {
  return reinterpret_cast<const Slot*>(data_ + kPageSize) - (index + 1);
}

uint16_t SlottedPage::LiveCount() const {
  uint16_t live = 0;
  for (uint16_t i = 0; i < SlotCount(); ++i) {
    if (SlotAt(i)->offset != 0) ++live;
  }
  return live;
}

size_t SlottedPage::ContiguousFree() const {
  size_t slots_bottom = kPageSize - SlotCount() * sizeof(Slot);
  return slots_bottom - header()->free_begin;
}

size_t SlottedPage::DeadBytes() const {
  size_t dead = 0;
  for (uint16_t i = 0; i < SlotCount(); ++i) {
    const Slot* s = SlotAt(i);
    if (s->offset == 0) dead += s->length;
  }
  return dead;
}

size_t SlottedPage::FreeSpace() const {
  return ContiguousFree() + DeadBytes();
}

bool SlottedPage::Fits(size_t size) const {
  // A tombstoned slot can be reused; otherwise a new slot entry is needed.
  bool has_tombstone = false;
  for (uint16_t i = 0; i < SlotCount(); ++i) {
    if (SlotAt(i)->offset == 0) {
      has_tombstone = true;
      break;
    }
  }
  size_t need = size + (has_tombstone ? 0 : sizeof(Slot));
  return FreeSpace() >= need;
}

Result<uint16_t> SlottedPage::Insert(std::span<const uint8_t> payload) {
  if (payload.size() > MaxRecordSize()) {
    return Status::InvalidArgument("record exceeds page capacity");
  }
  // Prefer reusing a tombstoned slot so RecordIds stay dense.
  uint16_t slot = SlotCount();
  for (uint16_t i = 0; i < SlotCount(); ++i) {
    if (SlotAt(i)->offset == 0) {
      slot = i;
      break;
    }
  }
  Status st = InsertAt(slot, payload);
  if (!st.ok()) return st;
  return slot;
}

Status SlottedPage::InsertAt(uint16_t slot, std::span<const uint8_t> payload) {
  PageHeader* h = header();
  bool new_slot = slot >= h->slot_count;
  if (!new_slot && SlotAt(slot)->offset != 0) {
    return Status::AlreadyExists("slot is live");
  }
  // Slots past slot_count materialize the gap as tombstones: replicated
  // replay applies page inserts in commit order, which can create slot
  // k+1 before slot k (the earlier-slot insert's transaction committed
  // later). Normal redo/undo stays contiguous and never takes the gap
  // path.
  size_t gap_slots = new_slot ? slot + 1 - h->slot_count : 0;
  size_t need = payload.size() + gap_slots * sizeof(Slot);
  if (ContiguousFree() < need) {
    if (FreeSpace() < need) return Status::OutOfSpace("page full");
    Compact();
    if (ContiguousFree() < need) return Status::OutOfSpace("page full");
  }
  if (new_slot) {
    for (uint16_t i = h->slot_count; i < slot; ++i) {
      Slot* gap = SlotAt(i);
      gap->offset = 0;
      gap->length = 0;
    }
    h->slot_count = slot + 1;
  }
  Slot* s = SlotAt(slot);
  s->offset = static_cast<uint16_t>(h->free_begin);
  s->length = static_cast<uint16_t>(payload.size());
  if (!payload.empty()) {
    std::memcpy(data_ + h->free_begin, payload.data(), payload.size());
  }
  h->free_begin += static_cast<uint32_t>(payload.size());
  return Status::Ok();
}

Result<std::span<const uint8_t>> SlottedPage::Read(uint16_t slot) const {
  if (slot >= SlotCount()) return Status::NotFound("slot out of range");
  const Slot* s = SlotAt(slot);
  if (s->offset == 0) return Status::NotFound("slot deleted");
  return std::span<const uint8_t>(data_ + s->offset, s->length);
}

Status SlottedPage::Update(uint16_t slot, std::span<const uint8_t> payload) {
  if (slot >= SlotCount()) return Status::NotFound("slot out of range");
  Slot* s = SlotAt(slot);
  if (s->offset == 0) return Status::NotFound("slot deleted");
  if (payload.size() <= s->length) {
    // Shrinking or equal: overwrite in place (leftover bytes become dead
    // space accounted against the old length).
    std::memcpy(data_ + s->offset, payload.data(), payload.size());
    s->length = static_cast<uint16_t>(payload.size());
    return Status::Ok();
  }
  // Growing: tombstone, then re-insert into the same slot.
  uint16_t old_offset = s->offset;
  uint16_t old_length = s->length;
  s->offset = 0;
  Status st = InsertAt(slot, payload);
  if (!st.ok()) {
    s->offset = old_offset;  // Roll back the tombstone.
    s->length = old_length;
    return st;
  }
  return Status::Ok();
}

Status SlottedPage::Delete(uint16_t slot) {
  if (slot >= SlotCount()) return Status::NotFound("slot out of range");
  Slot* s = SlotAt(slot);
  if (s->offset == 0) return Status::NotFound("slot already deleted");
  PageHeader* h = header();
  if (static_cast<uint32_t>(s->offset) + s->length == h->free_begin) {
    // LIFO reclamation: the record sits at the top of the heap, so its
    // bytes return to the contiguous pool immediately. This makes undo's
    // delete-of-the-latest-insert a byte-exact reversal — without it, an
    // aborted transaction leaks its slot entries and dead bytes until
    // compaction, and rolling back a delete on a near-full page can fail
    // with OutOfSpace (an abort must never fail for lack of space it
    // itself consumed).
    h->free_begin = s->offset;
    s->length = 0;
  }
  s->offset = 0;  // A surviving length measures reclaimable dead space.
  // Trailing tombstones that carry no dead bytes release their directory
  // entries too; InsertAt re-materializes gaps on demand, so slot numbers
  // handed out earlier stay addressable.
  while (h->slot_count > 0) {
    Slot* last = SlotAt(h->slot_count - 1);
    if (last->offset != 0 || last->length != 0) break;
    --h->slot_count;
  }
  return Status::Ok();
}

bool SlottedPage::IsLive(uint16_t slot) const {
  return slot < SlotCount() && SlotAt(slot)->offset != 0;
}

void SlottedPage::Compact() {
  PageHeader* h = header();
  // Copy live records into a scratch heap in slot order, then rewrite.
  std::vector<uint8_t> scratch;
  scratch.reserve(h->free_begin - sizeof(PageHeader));
  std::vector<std::pair<uint16_t, uint16_t>> placed(SlotCount());  // off,len
  for (uint16_t i = 0; i < SlotCount(); ++i) {
    Slot* s = SlotAt(i);
    if (s->offset == 0) {
      placed[i] = {0, 0};
      continue;
    }
    uint16_t new_off =
        static_cast<uint16_t>(sizeof(PageHeader) + scratch.size());
    scratch.insert(scratch.end(), data_ + s->offset,
                   data_ + s->offset + s->length);
    placed[i] = {new_off, s->length};
  }
  if (!scratch.empty()) {
    std::memcpy(data_ + sizeof(PageHeader), scratch.data(), scratch.size());
  }
  for (uint16_t i = 0; i < SlotCount(); ++i) {
    Slot* s = SlotAt(i);
    if (s->offset != 0) {
      s->offset = placed[i].first;
      s->length = placed[i].second;
    } else {
      s->length = 0;  // Dead space reclaimed.
    }
  }
  h->free_begin = static_cast<uint32_t>(sizeof(PageHeader) + scratch.size());
}

}  // namespace shoremt::page
