#ifndef SHOREMT_BUFFER_BUFFER_POOL_H_
#define SHOREMT_BUFFER_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "buffer/dirty_page_table.h"
#include "buffer/frame.h"
#include "buffer/frame_table.h"
#include "buffer/in_transit.h"
#include "common/status.h"
#include "common/types.h"
#include "io/io_scheduler.h"
#include "io/volume.h"
#include "sync/lockfree_stack.h"
#include "sync/periodic_daemon.h"
#include "sync/rw_latch.h"
#include "sync/spinlock.h"
#include "sync/sync_stats.h"

namespace shoremt::buffer {

/// Buffer pool tuning knobs; defaults are the Shore-MT "final" stage, and
/// the stage presets in sm/options.h roll them back per §7.
struct BufferPoolOptions {
  size_t frame_count = 2048;
  TableKind table_kind = TableKind::kCuckoo;
  /// Lock-free conditional pin for already-pinned (hot) pages (§6.2.1).
  bool pin_if_pinned = true;
  /// Shards of the in-transit-out list (1 = original global list).
  int transit_shards = 128;
  /// Release the clock-hand mutex before write-back/IO during eviction
  /// (§7.6); if false the hand is held across the whole eviction.
  bool release_clock_hand_early = true;
  /// Background page cleaner (asynchronous dirty write-back, §2.2.1): a
  /// cv-driven daemon that incrementally writes back the OLDEST dirty
  /// pages (by rec_lsn, from the dirty-page table) so the redo low-water
  /// mark keeps advancing. Woken by its interval, by the dirty-ratio
  /// trigger, and by WakeCleaner() (log-segment pressure).
  bool enable_cleaner = false;
  uint64_t cleaner_interval_us = 2000;
  /// Dirty frames written back per cleaner pass (0 = all — a full sweep).
  /// Incremental batches keep each pass short so a wake-up never stalls
  /// the pool behind one long write storm.
  size_t cleaner_batch = 64;
  /// Back-pressure trigger: MarkDirty wakes the cleaner once dirty pages
  /// exceed this fraction of the pool (only with enable_cleaner).
  double cleaner_dirty_ratio = 0.25;
  /// Cleaner daemons (page-id partitioned: daemon i owns pages with
  /// page % cleaner_threads == i, so two daemons never contend for the
  /// same dirty page). Each daemon submits its batch through its own
  /// I/O ring as coalesced vectored write-backs.
  size_t cleaner_threads = 1;
  /// Max detached prefetch reads in flight pool-wide; PrefetchPages drops
  /// (never blocks) beyond this. 0 disables prefetching.
  size_t prefetch_window = 64;
  /// Background checksum scrubber: a PeriodicDaemon that walks COLD
  /// (non-resident) pages verifying their on-media checksums at a bounded
  /// rate — scrub_pages_per_pass device reads every scrub_interval_us.
  /// Failures are repaired through the installed page repairer when one
  /// exists, otherwise only counted (the damage surfaces as Corruption on
  /// the next read).
  bool enable_scrubber = false;
  uint64_t scrub_interval_us = 10'000;
  size_t scrub_pages_per_pass = 32;
  /// Async I/O spine tuning (workers, slots, ring window, coalescing cap,
  /// transient-error retry budget — also used by the pool's synchronous
  /// miss-path reads and write-backs).
  io::IoSchedulerOptions io;
};

/// Aggregate counters for benches and calibration.
struct BufferPoolStats {
  std::atomic<uint64_t> fixes{0};
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> optimistic_hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> dirty_writebacks{0};
  std::atomic<uint64_t> cleaner_writes{0};
  std::atomic<uint64_t> cleaner_sweeps{0};
  std::atomic<uint64_t> cleaner_batches{0};     ///< Sweeps that submitted a batch.
  std::atomic<uint64_t> prefetch_issued{0};     ///< Detached reads submitted.
  std::atomic<uint64_t> prefetch_dropped{0};    ///< Shed by window/slots/frames.
  std::atomic<uint64_t> prefetch_installed{0};  ///< Completed into the table.
  std::atomic<uint64_t> prefetch_errors{0};     ///< Detached reads that failed.
  std::atomic<uint64_t> checksum_failures{0};   ///< Images failing page CRC.
  std::atomic<uint64_t> pages_repaired{0};      ///< Rebuilt via the repairer.
  std::atomic<uint64_t> scrub_pages{0};         ///< Pages the scrubber verified.
};

class BufferPool;

/// RAII handle to a fixed (pinned + latched) page. Move-only; unfixes on
/// destruction. Obtained from BufferPool::FixPage / NewPage.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  ~PageHandle() { Unfix(); }

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  /// The page image (kPageSize bytes).
  uint8_t* data();
  const uint8_t* data() const;
  PageNum page() const { return page_; }
  sync::LatchMode mode() const { return mode_; }

  /// Records that the caller modified the page under an exclusive latch.
  /// `page_lsn` is the END LSN of the WAL record covering the change (what
  /// the page header stores — everything below it is on the image);
  /// `rec_lsn` is that record's START LSN, which becomes the page's
  /// recovery LSN if it was clean. The distinction matters: redo scans
  /// from the minimum rec_lsn and must include the first dirtying record
  /// itself — seeding rec_lsn with the end LSN would place the scan start
  /// just past it and lose the update if the image never reaches disk.
  /// There is deliberately no single-LSN overload: every pre-existing
  /// caller passed the record END LSN, and routing that habit through a
  /// convenience overload would silently overstate the recovery LSN —
  /// the exact lost-update bug the two-argument form exists to prevent.
  void MarkDirty(Lsn page_lsn, Lsn rec_lsn);

  /// Converts an exclusive hold to shared (keeps the pin).
  void DowngradeLatch();

  /// Releases latch + pin early; the handle becomes invalid.
  void Unfix();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, int frame, PageNum page, sync::LatchMode mode)
      : pool_(pool), frame_(frame), page_(page), mode_(mode) {}

  BufferPool* pool_ = nullptr;
  int frame_ = -1;
  PageNum page_ = kInvalidPageNum;
  sync::LatchMode mode_ = sync::LatchMode::kShared;
};

/// Unlatched, unpinned, version-stamped view of a cached page — the
/// optimistic guard state of the frame's HybridLatch surfaced as a handle.
/// Obtained from BufferPool::FixOptimistic. The holder may READ the image
/// at any time but must treat every byte as potentially torn until
/// Validate() returns true; on false the reader restarts (typically from
/// the B-tree root). The handle takes no pin, so it cannot prevent
/// eviction — instead, eviction holds the frame latch exclusive from the
/// claim until the successor image is published, so any read that
/// overlapped a reuse fails validation. Copyable and trivially cheap.
class OptimisticPageHandle {
 public:
  OptimisticPageHandle() = default;

  bool valid() const { return pool_ != nullptr; }
  /// The (unvalidated) page image. Reads must be performed with
  /// torn-tolerant code paths (see SHOREMT_NO_SANITIZE_THREAD).
  const uint8_t* data() const;
  PageNum page() const { return page_; }

  /// True iff every read since FixOptimistic observed a consistent image:
  /// no exclusive latch holder overlapped and the frame version is
  /// unchanged (so the frame still caches this page — reuse bumps it).
  bool Validate() const;

 private:
  friend class BufferPool;
  OptimisticPageHandle(BufferPool* pool, int frame, PageNum page,
                       uint64_t stamp)
      : pool_(pool), frame_(frame), page_(page), stamp_(stamp) {}

  BufferPool* pool_ = nullptr;
  int frame_ = -1;
  PageNum page_ = kInvalidPageNum;
  uint64_t stamp_ = 0;
};

/// The buffer pool manager (§2.2.1): presents the volume as if memory-
/// resident, with CLOCK replacement, WAL-correct dirty write-back and the
/// staged synchronization strategies of §6.2/§7.
class BufferPool {
 public:
  /// `log_flush` (optional) is invoked with a page's LSN before its dirty
  /// image is written out, enforcing write-ahead logging.
  using LogFlushFn = std::function<Status(Lsn)>;
  /// Supplies the log's current append LSN (cleaner sweeps snapshot it).
  using LsnProviderFn = std::function<Lsn()>;

  BufferPool(io::Volume* volume, BufferPoolOptions options,
             LogFlushFn log_flush = nullptr);

  /// Wires the log's append-LSN source. With a provider, a full cleaner
  /// sweep publishes the sweep-start LSN, which is a strictly safe redo
  /// point: every page dirtied before the sweep started has been written
  /// by the end of the sweep, so surviving dirt carries only newer LSNs.
  /// Without a provider the sweep publishes the newest page LSN it wrote
  /// (the paper's §7.7 approximation). Synchronized with the background
  /// cleaner (which may already be running when the owner wires this).
  void SetLsnProvider(LsnProviderFn provider);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fixes an existing page: pins it, fetching from the volume on a miss,
  /// and acquires its latch in `mode`.
  Result<PageHandle> FixPage(PageNum page, sync::LatchMode mode);

  /// Optimistic fix: returns an unlatched, unpinned, version-stamped view
  /// of `page` without writing ANY shared cache line (no pin RMW, no latch
  /// word update — the §7 read-path collapse removed at its root). The
  /// caller reads through the handle and calls Validate(); a false
  /// validation means the image may be torn and the read must restart.
  /// Frame identity is re-verified after stamping exactly like
  /// AcquireVerified does on the pinned path, and eviction/reuse holds the
  /// frame latch exclusive (bumping the version on release) so a stale
  /// reader can never validate against a recycled frame.
  ///
  /// On a cache miss the page is brought in through the ordinary miss
  /// machinery first (one latched fix, immediately released). Returns
  /// Busy — the restart signal — when the frame stays exclusively latched
  /// or in flux across the bounded retry window; callers downgrade to
  /// FixPage after enough restarts so writers and pathological conflicts
  /// still make progress.
  Result<OptimisticPageHandle> FixOptimistic(PageNum page);

  /// Fixes a brand-new page (no read; the caller formats it). The page
  /// must not be cached or contain live data.
  Result<PageHandle> NewPage(PageNum page);

  /// Writes `page` out if dirty (no-op when clean or uncached).
  Status FlushPage(PageNum page);
  /// Writes out every dirty page (quiesced shutdown / tests).
  Status FlushAll();

  /// Minimum rec_lsn across dirty frames — the checkpoint's redo low
  /// water mark. This is the *blocking* variant: it scans every frame
  /// (original Shore; kept for the baseline stage presets).
  Lsn ScanMinRecLsn() const;

  /// The decoupled variant (§7.7 taken to its conclusion): the explicit
  /// dirty-page table maintains the minimum first-dirty rec_lsn
  /// incrementally — one O(log n) update per dirty/clean transition, an
  /// O(1) read here. Null when nothing is dirty.
  Lsn DirtyMinRecLsn() const { return dpt_.MinRecLsn(); }
  /// Dirty pages currently tracked.
  size_t DirtyPageCount() const { return dpt_.size(); }

  /// Newest page LSN (or sweep-start LSN, with an LSN provider) published
  /// by the last completed full sweep — the paper's §7.7 approximation,
  /// kept for comparison; checkpoints now use DirtyMinRecLsn(). Null if
  /// no full sweep has completed.
  Lsn CleanerTrackedLsn() const {
    return Lsn{cleaner_lsn_.load(std::memory_order_acquire)};
  }

  /// Runs one synchronous full cleaner sweep (tests, cold starts).
  Status CleanerSweep() { return CleanerPass(0); }

  /// One incremental cleaner round: writes back up to `max_pages` dirty
  /// pages in ascending rec_lsn order (0 = all), WAL-correctly (log
  /// flushed to each page's LSN first). The background daemon calls this
  /// on every wake-up; tests and checkpoint cold starts call it directly.
  Status CleanerPass(size_t max_pages);

  /// Wakes the background cleaner daemons immediately (no-op without any).
  /// Called on log-segment pressure by the flush pipeline's hook and by
  /// the dirty-ratio trigger — a cv notify, never a busy-wait.
  void WakeCleaner();

  /// Readahead: starts detached asynchronous reads for the pages not
  /// already cached, bounded by `prefetch_window`. Never blocks and never
  /// fails — saturation (no free I/O slot, no evictable frame, window
  /// full) just drops the hint. A prefetched frame enters the pool
  /// unlatched with zero pins once its read completes; until then the
  /// page's in-transit entry makes concurrent fixers wait instead of
  /// issuing a duplicate read. Returns the number of reads issued.
  size_t PrefetchPages(std::span<const PageNum> pages);

  /// The async I/O spine (benches submit through their own rings).
  io::IoScheduler* io() { return io_.get(); }

  /// `fn` is invoked (from the cleaner thread) once per page the cleaner
  /// writes back — the storage manager mirrors the count into
  /// LogStats::cleaner_writebacks. Synchronized like SetLsnProvider.
  void SetCleanerWritebackHook(std::function<void()> fn);

  /// Media auto-repair source. When a page image fails its checksum on
  /// read-in (miss path or scrubber), the pool calls `fn(page, img)`; the
  /// repairer must rebuild the full kPageSize image into `img`, stamp its
  /// checksum, AND durably rewrite the page on the volume (so the media
  /// copy is healed even if the frame is evicted clean). Returns Ok only
  /// on a complete repair. The storage manager wires this to its
  /// archive+log page rebuilder. Synchronized like SetLsnProvider.
  using PageRepairFn = std::function<Status(PageNum, uint8_t*)>;
  void SetPageRepairer(PageRepairFn fn);

  /// One scrubber round: verifies the on-media checksums of up to
  /// `max_pages` COLD pages starting at the persistent scrub cursor
  /// (resident pages are skipped — their media copy is rewritten with a
  /// fresh checksum at next write-back anyway). Checksum failures are
  /// repaired through the page repairer when installed. The background
  /// daemon calls this each tick; tests call it directly. Returns the
  /// first repair failure, if any.
  Status ScrubPass(size_t max_pages);

  const BufferPoolStats& stats() const { return stats_; }
  size_t frame_count() const { return frames_.size(); }
  io::Volume* volume() { return volume_; }

 private:
  friend class PageHandle;
  friend class OptimisticPageHandle;

  /// Pin bookkeeping shared by hit paths. Returns false if the frame no
  /// longer holds `page` (caller retries).
  bool TryOptimisticPin(PageNum page, int frame);

  /// Latches a pinned frame in `mode`, then re-verifies it still holds
  /// `page` (the loader invalidates a frame whose disk read failed). On
  /// mismatch the latch and pin are released and false is returned — the
  /// caller retries its lookup.
  bool AcquireVerified(int frame, PageNum page, sync::LatchMode mode);
  /// Miss path: allocate a frame, read (or skip for new pages), publish.
  Result<int> HandleMiss(PageNum page, bool read_from_disk);
  /// Finds a victim frame via CLOCK; returns a frame claimed for reuse
  /// (already unmapped and written back) with its latch held EXCLUSIVE.
  /// The latch stays held from the claim until the frame's next image is
  /// published (HandleMiss return / prefetch completion), so optimistic
  /// readers that overlapped the reuse fail validation; every failure path
  /// must release it before recycling the frame.
  Result<int> AllocateFrame();
  /// Writes frame's dirty image to the volume (log flushed first).
  Status WriteBack(int frame, PageNum page);
  /// One cleaner round over `partition` of `partitions` (page-id modulo):
  /// gathers the oldest dirty pages non-blockingly, WAL-flushes once to
  /// the batch's max page LSN, then submits the batch as coalesced
  /// vectored writes through an I/O ring and harvests completions.
  Status CleanerPassImpl(size_t max_pages, size_t partition,
                         size_t partitions);
  /// Prefetch completion (runs on the I/O worker): publishes the frame's
  /// mapping on success, recycles the frame otherwise, clears the
  /// in-transit entry last.
  void FinishPrefetch(int frame, PageNum page, Status st);
  void UnfixInternal(int frame, sync::LatchMode mode);
  /// Runs the installed repairer (if any) against a checksum-failed image
  /// of `page` held in `img`. Counts stats; Corruption when unrepairable.
  Status TryRepairPage(PageNum page, uint8_t* img);
  /// Removes and returns the recorded prefetch-completion error for
  /// `page` (Ok when none). FixPage consumes this after waiting out an
  /// in-transit entry so a failed detached read surfaces to the waiter.
  Status TakePrefetchError(PageNum page);
  /// MarkDirty's clean→dirty transition: registers the page in the
  /// dirty-page table and fires the dirty-ratio cleaner trigger.
  void NoteFirstDirty(PageNum page, uint64_t rec_lsn);

  uint8_t* FrameData(int frame) {
    return arena_.get() + static_cast<size_t>(frame) * kPageSize;
  }

  struct FreeDeleter {
    void operator()(uint8_t* p) const { std::free(p); }
  };

  io::Volume* volume_;
  BufferPoolOptions options_;
  LogFlushFn log_flush_;
  LsnProviderFn lsn_provider_;
  /// aligned_alloc'd to the O_DIRECT block size so every frame is a valid
  /// direct-I/O buffer (kPageSize is a multiple of the alignment).
  std::unique_ptr<uint8_t[], FreeDeleter> arena_;
  std::vector<Frame> frames_;
  std::unique_ptr<FrameTable> table_;
  sync::LockFreeIndexStack free_frames_;
  InTransitTable in_transit_;

  sync::SyncStats clock_stats_;
  sync::TtasLock clock_lock_;
  std::atomic<size_t> clock_hand_{0};

  BufferPoolStats stats_;
  DirtyPageTable dpt_;
  /// Guarded by hooks_mutex_: set by the owner after construction,
  /// while the cleaner daemon may already be running.
  std::function<void()> cleaner_writeback_hook_;
  PageRepairFn page_repairer_;
  std::mutex hooks_mutex_;  ///< Guards lsn_provider_ + writeback/repair hooks.
  /// Failed detached-read completions, keyed by page, consumed by the
  /// first fixer that waited on the page's in-transit entry (satisfying
  /// the invariant that an I/O error never vanishes between the worker
  /// callback and the thread that wanted the page). Bounded; guarded by
  /// prefetch_err_mutex_, with a relaxed size mirror for the fast path.
  std::mutex prefetch_err_mutex_;
  std::unordered_map<PageNum, Status> prefetch_errors_;
  std::atomic<size_t> prefetch_error_count_{0};
  /// Next page the scrubber will examine (wraps at the volume end).
  std::atomic<PageNum> scrub_cursor_{1};
  std::atomic<uint64_t> cleaner_lsn_{0};
  /// Detached prefetch reads currently in flight (bounds PrefetchPages).
  std::atomic<size_t> prefetch_inflight_{0};
  /// The async I/O spine. Declared after every structure its worker-side
  /// completions touch (frames, table, transit, DPT, stats) and after the
  /// arena, so its destructor — which executes everything still queued and
  /// joins the workers — runs while all of them are alive.
  std::unique_ptr<io::IoScheduler> io_;
  /// Background cleaners (shared cv-daemon scaffold): interval tick +
  /// WakeCleaner kicks, one incremental partitioned pass per wake-up.
  std::vector<std::unique_ptr<sync::PeriodicDaemon>> cleaner_daemons_;
  /// Background checksum scrubber; declared after io_ like the cleaners
  /// (stopped in the destructor before any member teardown).
  std::unique_ptr<sync::PeriodicDaemon> scrub_daemon_;
};

}  // namespace shoremt::buffer

#endif  // SHOREMT_BUFFER_BUFFER_POOL_H_
