#ifndef SHOREMT_BUFFER_DIRTY_PAGE_TABLE_H_
#define SHOREMT_BUFFER_DIRTY_PAGE_TABLE_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace shoremt::buffer {

/// Explicit dirty-page table (the ARIES DPT): page → rec_lsn of the first
/// record that dirtied its current in-memory incarnation, with the minimum
/// rec_lsn maintained incrementally. This replaces the O(frames)
/// ScanMinRecLsn sweep on the checkpoint path with an O(1) read, and gives
/// the background cleaner its work queue (oldest rec_lsn first — writing
/// those pages back is what advances the redo low-water mark and lets the
/// log recycle segments).
///
/// Entries are maintained at the frame dirty/clean transition points:
/// MarkDirty's 0→lsn rec_lsn CAS inserts; every successful write-back
/// (cleaner, eviction, FlushPage) erases. Both run under the frame latch,
/// so per-page transitions are ordered; this table's own mutex only
/// protects the container. The mutex is uncontended in steady state: a
/// page enters once per dirty lifecycle, not once per update.
class DirtyPageTable {
 public:
  /// Registers `page` first-dirtied at `rec_lsn`; returns the table size
  /// after the insert (the cleaner's dirty-ratio trigger reads it without
  /// a second lock round-trip). Re-inserting an existing page keeps the
  /// older rec_lsn (first-dirty wins).
  size_t Insert(PageNum page, uint64_t rec_lsn) {
    std::lock_guard<std::mutex> guard(mutex_);
    auto [it, inserted] = by_page_.try_emplace(page, rec_lsn);
    if (inserted) by_lsn_[rec_lsn].push_back(page);
    return by_page_.size();
  }

  /// Removes `page` (no-op if absent).
  void Erase(PageNum page) {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = by_page_.find(page);
    if (it == by_page_.end()) return;
    auto lsn_it = by_lsn_.find(it->second);
    auto& pages = lsn_it->second;
    pages.erase(std::find(pages.begin(), pages.end(), page));
    if (pages.empty()) by_lsn_.erase(lsn_it);
    by_page_.erase(it);
  }

  /// Minimum rec_lsn across dirty pages — the redo low-water mark. Null
  /// when no page is dirty.
  Lsn MinRecLsn() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return by_lsn_.empty() ? Lsn::Null() : Lsn{by_lsn_.begin()->first};
  }

  size_t size() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return by_page_.size();
  }

  /// Up to `n` dirty pages in ascending rec_lsn order (n == 0 → all): the
  /// cleaner's incremental work list. A snapshot — entries may clean or
  /// re-dirty concurrently; callers re-verify under the frame latch.
  std::vector<PageNum> OldestPages(size_t n) const {
    std::lock_guard<std::mutex> guard(mutex_);
    std::vector<PageNum> out;
    out.reserve(n == 0 ? by_page_.size() : std::min(n, by_page_.size()));
    for (const auto& [lsn, pages] : by_lsn_) {
      for (PageNum p : pages) {
        out.push_back(p);
        if (n != 0 && out.size() >= n) return out;
      }
    }
    return out;
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<PageNum, uint64_t> by_page_;
  /// rec_lsn → pages first-dirtied there (several pages can share one
  /// record's end LSN, e.g. both sides of a B+Tree split).
  std::map<uint64_t, std::vector<PageNum>> by_lsn_;
};

}  // namespace shoremt::buffer

#endif  // SHOREMT_BUFFER_DIRTY_PAGE_TABLE_H_
