#ifndef SHOREMT_BUFFER_FRAME_H_
#define SHOREMT_BUFFER_FRAME_H_

#include <atomic>
#include <cstdint>

#include "common/types.h"
#include "sync/hybrid_latch.h"

namespace shoremt::buffer {

/// Control block for one buffer pool frame. The 8 KiB page image itself
/// lives in a separate contiguous arena (better locality for scans and no
/// false sharing with the hot pin-count word).
struct Frame {
  /// Page currently cached here; kInvalidPageNum when the frame is free or
  /// claimed by an evictor.
  std::atomic<PageNum> page{kInvalidPageNum};

  /// Pin count. 0 = evictable. Pinning 0→1 requires the frame-table bucket
  /// lock; pinning n→n+1 (n>0) may use the lock-free PinIfPinned fast path
  /// (§6.2.1: "pinned pages cannot be evicted").
  std::atomic<uint32_t> pins{0};

  /// Dirty since last write-back.
  std::atomic<bool> dirty{false};

  /// CLOCK reference bit; set on unpin, cleared by the sweeping hand.
  std::atomic<bool> referenced{false};

  /// LSN of the first update that dirtied the current contents (recovery's
  /// redo must start no later than the minimum rec_lsn over dirty frames).
  std::atomic<uint64_t> rec_lsn{0};

  /// Protects the page image (§2.2.2 page latch). Version-stamped: an
  /// optimistic reader records latch.StampOptimistic() instead of pinning
  /// or latching, reads the image latch-free, and trusts the bytes only if
  /// latch.Validate(stamp) holds afterwards. Every exclusive release bumps
  /// the version — page modification, eviction/reuse (the evictor holds
  /// the latch exclusive from the claim until the successor image is
  /// published) and prefetch install all invalidate stale stamps.
  sync::HybridLatch latch;

  /// Lock-free conditional pin: increments the pin count only if it is
  /// already non-zero. Returns false if the frame was unpinned (caller
  /// must go through the locked path).
  bool PinIfPinned() {
    uint32_t cur = pins.load(std::memory_order_relaxed);
    while (cur != 0) {
      if (pins.compare_exchange_weak(cur, cur + 1,
                                     std::memory_order_acquire)) {
        return true;
      }
    }
    return false;
  }

  void Unpin() {
    referenced.store(true, std::memory_order_relaxed);
    pins.fetch_sub(1, std::memory_order_release);
  }
};

}  // namespace shoremt::buffer

#endif  // SHOREMT_BUFFER_FRAME_H_
