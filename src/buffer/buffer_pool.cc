#include "buffer/buffer_pool.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "io/retry.h"
#include "page/page.h"

namespace shoremt::buffer {

// ------------------------------------------------------------ PageHandle --

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Unfix();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_ = other.page_;
    mode_ = other.mode_;
    other.pool_ = nullptr;
  }
  return *this;
}

uint8_t* PageHandle::data() { return pool_->FrameData(frame_); }
const uint8_t* PageHandle::data() const { return pool_->FrameData(frame_); }

// -------------------------------------------------- OptimisticPageHandle --

const uint8_t* OptimisticPageHandle::data() const {
  return pool_->FrameData(frame_);
}

bool OptimisticPageHandle::Validate() const {
  return pool_ != nullptr && pool_->frames_[frame_].latch.Validate(stamp_);
}

void PageHandle::MarkDirty(Lsn page_lsn, Lsn rec_lsn) {
  Frame& f = pool_->frames_[frame_];
  page::HeaderOf(pool_->FrameData(frame_))->page_lsn = page_lsn.value;
  f.dirty.store(true, std::memory_order_release);
  uint64_t expected = 0;
  if (f.rec_lsn.compare_exchange_strong(expected, rec_lsn.value,
                                        std::memory_order_acq_rel)) {
    // Clean→dirty transition (once per dirty lifecycle, not per update):
    // register in the dirty-page table so the incremental min and the
    // cleaner's work list see this page.
    pool_->NoteFirstDirty(page_, rec_lsn.value);
  }
}

void PageHandle::DowngradeLatch() {
  pool_->frames_[frame_].latch.Downgrade();
  mode_ = sync::LatchMode::kShared;
}

void PageHandle::Unfix() {
  if (pool_ == nullptr) return;
  pool_->UnfixInternal(frame_, mode_);
  pool_ = nullptr;
}

// ------------------------------------------------------------ BufferPool --

BufferPool::BufferPool(io::Volume* volume, BufferPoolOptions options,
                       LogFlushFn log_flush)
    : volume_(volume),
      options_(options),
      log_flush_(std::move(log_flush)),
      // 4096-aligned so every frame is O_DIRECT-capable in place.
      arena_(static_cast<uint8_t*>(
          std::aligned_alloc(4096, options.frame_count * kPageSize))),
      frames_(options.frame_count),
      table_(MakeFrameTable(options.table_kind, options.frame_count)),
      free_frames_(static_cast<uint32_t>(options.frame_count)),
      in_transit_(options.transit_shards),
      clock_stats_("bpool.clock"),
      io_(std::make_unique<io::IoScheduler>(volume, options.io)) {
  sync::SyncStatsRegistry::Instance().Register(&clock_stats_);
  for (uint32_t i = 0; i < options.frame_count; ++i) free_frames_.Push(i);
  if (options_.enable_cleaner) {
    // The background cleaners: woken by the interval tick, by MarkDirty's
    // dirty-ratio trigger, or by WakeCleaner() (log-segment pressure
    // from the flush pipeline); each wake-up runs one incremental pass
    // over the oldest dirty pages of the daemon's page-id partition —
    // never a busy-wait, never a pool-wide stall.
    size_t n = std::max<size_t>(1, options_.cleaner_threads);
    cleaner_daemons_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      auto d = std::make_unique<sync::PeriodicDaemon>();
      d->Start(std::chrono::microseconds(options_.cleaner_interval_us),
               [this, i, n] {
                 (void)CleanerPassImpl(options_.cleaner_batch, i, n);
               });
      cleaner_daemons_.push_back(std::move(d));
    }
  }
  if (options_.enable_scrubber) {
    scrub_daemon_ = std::make_unique<sync::PeriodicDaemon>();
    scrub_daemon_->Start(
        std::chrono::microseconds(options_.scrub_interval_us),
        [this] { (void)ScrubPass(options_.scrub_pages_per_pass); });
  }
}

BufferPool::~BufferPool() {
  if (scrub_daemon_) scrub_daemon_->Stop();
  for (auto& d : cleaner_daemons_) d->Stop();
  // io_ (and its workers, which may still be completing prefetch reads
  // into the arena) is torn down by member destruction, before the arena
  // and frame structures it touches.
  sync::SyncStatsRegistry::Instance().Unregister(&clock_stats_);
}

void BufferPool::SetLsnProvider(LsnProviderFn provider) {
  std::lock_guard<std::mutex> guard(hooks_mutex_);
  lsn_provider_ = std::move(provider);
}

void BufferPool::SetCleanerWritebackHook(std::function<void()> fn) {
  std::lock_guard<std::mutex> guard(hooks_mutex_);
  cleaner_writeback_hook_ = std::move(fn);
}

void BufferPool::SetPageRepairer(PageRepairFn fn) {
  std::lock_guard<std::mutex> guard(hooks_mutex_);
  page_repairer_ = std::move(fn);
}

Status BufferPool::TryRepairPage(PageNum page, uint8_t* img) {
  stats_.checksum_failures.fetch_add(1, std::memory_order_relaxed);
  PageRepairFn repairer;
  {
    std::lock_guard<std::mutex> guard(hooks_mutex_);
    repairer = page_repairer_;
  }
  if (!repairer) {
    return Status::Corruption("page " + std::to_string(page) +
                              " failed checksum verification (LSN " +
                              std::to_string(page::HeaderOf(img)->page_lsn) +
                              " on the damaged image); no repair source");
  }
  Status st = repairer(page, img);
  if (!st.ok()) {
    return Status::Corruption("page " + std::to_string(page) +
                              " failed checksum verification and repair: " +
                              st.message());
  }
  stats_.pages_repaired.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status BufferPool::TakePrefetchError(PageNum page) {
  std::lock_guard<std::mutex> guard(prefetch_err_mutex_);
  auto it = prefetch_errors_.find(page);
  if (it == prefetch_errors_.end()) return Status::Ok();
  Status st = it->second;
  prefetch_errors_.erase(it);
  prefetch_error_count_.store(prefetch_errors_.size(),
                              std::memory_order_release);
  return st;
}

void BufferPool::WakeCleaner() {
  for (auto& d : cleaner_daemons_) d->Wake();
}

void BufferPool::NoteFirstDirty(PageNum page, uint64_t rec_lsn) {
  size_t dirty = dpt_.Insert(page, rec_lsn);
  if (options_.enable_cleaner &&
      static_cast<double>(dirty) >
          options_.cleaner_dirty_ratio *
              static_cast<double>(frames_.size())) {
    WakeCleaner();
  }
}

bool BufferPool::TryOptimisticPin(PageNum page, int frame) {
  Frame& f = frames_[frame];
  if (!f.PinIfPinned()) return false;
  if (f.page.load(std::memory_order_acquire) != page) {
    f.Unpin();  // Pinned a frame that was recycled under us.
    return false;
  }
  return true;
}

bool BufferPool::AcquireVerified(int frame, PageNum page,
                                 sync::LatchMode mode) {
  Frame& f = frames_[frame];
  f.latch.Acquire(mode);
  // A pin blocks eviction but not invalidation by the frame's loader: if
  // the thread that published this mapping hit a read error while we
  // queued on the latch, it unmapped the frame — handing out the garbage
  // image would turn an I/O error into silent corruption.
  if (f.page.load(std::memory_order_acquire) != page) {
    f.latch.Release(mode);
    f.Unpin();
    return false;
  }
  return true;
}

Result<PageHandle> BufferPool::FixPage(PageNum page, sync::LatchMode mode) {
  if (page == kInvalidPageNum) {
    return Status::InvalidArgument("cannot fix the invalid page");
  }
  stats_.fixes.fetch_add(1, std::memory_order_relaxed);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    // Fast path (§6.2.1): lock-free lookup + conditional pin, verified by
    // re-reading the frame's page id after the pin lands.
    if (options_.pin_if_pinned) {
      int frame = table_->FindOptimistic(page);
      if (frame >= 0 && TryOptimisticPin(page, frame)) {
        stats_.hits.fetch_add(1, std::memory_order_relaxed);
        stats_.optimistic_hits.fetch_add(1, std::memory_order_relaxed);
        if (AcquireVerified(frame, page, mode)) {
          return PageHandle(this, frame, page, mode);
        }
        continue;  // Frame was invalidated while we queued on the latch.
      }
    }
    // Locked path: pin under the table's bucket lock (safe from zero).
    int frame = table_->FindAndPin(page, [&](int f) {
      frames_[f].pins.fetch_add(1, std::memory_order_acquire);
    });
    if (frame >= 0) {
      stats_.hits.fetch_add(1, std::memory_order_relaxed);
      if (AcquireVerified(frame, page, mode)) {
        return PageHandle(this, frame, page, mode);
      }
      continue;
    }
    // A prefetch (or a write-back) may have this page in transit: wait it
    // out and re-probe — a completed prefetch installs the mapping, so
    // what was a miss becomes a hit instead of a duplicate device read.
    if (in_transit_.WaitUntilClear(page)) {
      // If what we waited out was a detached read that FAILED, surface
      // its error here instead of silently re-reading: the waiter is the
      // I/O's real customer, and the retry budget was already spent on
      // the worker side.
      if (prefetch_error_count_.load(std::memory_order_acquire) != 0) {
        Status pe = TakePrefetchError(page);
        if (!pe.ok()) return pe;
      }
      continue;
    }
    // Miss: bring the page in ourselves. HandleMiss publishes the mapping
    // *before* the disk read and returns with the frame latched exclusive,
    // so concurrent fixers of the same page queue on the latch instead of
    // racing their own (possibly stale) reads against ours.
    auto r = HandleMiss(page, /*read_from_disk=*/true);
    if (r.ok()) {
      if (mode == sync::LatchMode::kShared) frames_[*r].latch.Downgrade();
      return PageHandle(this, *r, page, mode);
    }
    if (!r.status().IsBusy()) return r.status();
    // Busy: lost an insert race or no evictable frame right now — retry.
  }
  return Status::Busy("buffer pool thrashing: no evictable frames");
}

Result<OptimisticPageHandle> BufferPool::FixOptimistic(PageNum page) {
  if (page == kInvalidPageNum) {
    return Status::InvalidArgument("cannot fix the invalid page");
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    int frame = table_->FindOptimistic(page);
    if (frame >= 0) {
      Frame& f = frames_[frame];
      // Stamp first, then re-verify frame identity (the optimistic analog
      // of AcquireVerified): if the frame was recycled between the lookup
      // and the stamp, the page re-check below or — when the recycler is
      // still mid-flight — the eventual Validate() catches it, because
      // reuse holds the latch exclusive until the new image is published.
      uint64_t stamp = f.latch.StampOptimistic();
      if (stamp == sync::HybridLatch::kInvalidStamp) {
        // Exclusively latched right now (writer, loader, or evictor). Spin
        // a moment — leaf updates are short — then hand the conflict up as
        // the restart signal.
        sync::Backoff backoff;
        for (int spin = 0; spin < 16; ++spin) {
          backoff.Pause();
          stamp = f.latch.StampOptimistic();
          if (stamp != sync::HybridLatch::kInvalidStamp) break;
        }
        if (stamp == sync::HybridLatch::kInvalidStamp) {
          return Status::Busy("page exclusively latched");
        }
      }
      if (f.page.load(std::memory_order_acquire) != page) continue;
      return OptimisticPageHandle(this, frame, page, stamp);
    }
    // Miss: bring the page in through the ordinary (pinned) miss path,
    // drop the fix immediately and retry the optimistic probe — the
    // mapping now exists, so the next lap stamps it.
    SHOREMT_ASSIGN_OR_RETURN(PageHandle h,
                             FixPage(page, sync::LatchMode::kShared));
    h.Unfix();
  }
  return Status::Busy("optimistic fix: page stayed in flux");
}

Result<PageHandle> BufferPool::NewPage(PageNum page) {
  if (page == kInvalidPageNum) {
    return Status::InvalidArgument("cannot create the invalid page");
  }
  stats_.fixes.fetch_add(1, std::memory_order_relaxed);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    // A freed-and-reallocated page may still be cached; take it over.
    int frame = table_->FindAndPin(page, [&](int f) {
      frames_[f].pins.fetch_add(1, std::memory_order_acquire);
    });
    if (frame >= 0) {
      if (AcquireVerified(frame, page, sync::LatchMode::kExclusive)) {
        return PageHandle(this, frame, page, sync::LatchMode::kExclusive);
      }
      continue;
    }
    auto r = HandleMiss(page, /*read_from_disk=*/false);
    if (r.ok()) {
      // HandleMiss returns the frame already latched exclusive.
      return PageHandle(this, *r, page, sync::LatchMode::kExclusive);
    }
    if (!r.status().IsBusy()) return r.status();
  }
  return Status::Busy("buffer pool thrashing: no evictable frames");
}

/// Installs `page` in a fresh frame and returns it pinned AND latched
/// exclusive. The mapping is published *before* the page image is valid —
/// the exclusive latch (held across the disk read) is what makes that
/// safe: concurrent fixers find the mapping, pin, and queue on the latch
/// until the image is ready. Publishing first closes the stale-read race:
/// with read-then-publish, a page could be brought in, dirtied and be
/// mid-write-back by other threads while this thread still held a
/// pre-cycle image from the volume — installing it would lose those
/// updates.
Result<int> BufferPool::HandleMiss(PageNum page, bool read_from_disk) {
  SHOREMT_ASSIGN_OR_RETURN(int frame, AllocateFrame());
  Frame& f = frames_[frame];
  // The frame arrives from AllocateFrame latched EXCLUSIVE (held since the
  // claim). Publish: pin first so the frame is never observable evictable;
  // the latch held across the disk read is what queues concurrent fixers
  // and fails concurrent optimistic stamps.
  f.pins.store(1, std::memory_order_relaxed);
  f.dirty.store(false, std::memory_order_relaxed);
  f.rec_lsn.store(0, std::memory_order_relaxed);
  f.referenced.store(true, std::memory_order_relaxed);
  f.page.store(page, std::memory_order_release);
  if (!table_->Insert(page, frame)) {
    // Another thread brought the page in first; yield our copy. fetch_sub
    // (not a store of 0) so a transient optimistic pin from a stale
    // lookup can never be clobbered into an underflow.
    f.page.store(kInvalidPageNum, std::memory_order_relaxed);
    f.latch.ReleaseExclusive();
    if (f.pins.fetch_sub(1, std::memory_order_release) == 1) {
      free_frames_.Push(static_cast<uint32_t>(frame));
    }
    return Status::Busy("lost page-in race");
  }
  if (read_from_disk) {
    // Any in-flight write-back of this page (in-transit-out entries are
    // registered before the eviction unmaps the page, so they are visible
    // to whoever inserts the successor mapping) must land before the
    // volume image is current.
    in_transit_.WaitUntilClear(page);
    io::RetryPolicy policy{options_.io.max_retries,
                           options_.io.retry_initial_backoff_ns,
                           options_.io.retry_max_backoff_ns};
    Status st = io::RetryTransient(
        volume_, policy,
        [&] { return volume_->ReadPage(page, FrameData(frame)); });
    if (st.ok() && !page::VerifyPageChecksum(FrameData(frame))) {
      // The device delivered the bytes but they are not the bytes that
      // were written (bit rot, torn write): rebuild from the archive +
      // log when a repairer is wired, else fail loudly as Corruption —
      // never hand out a damaged image. Safe to repair in place: we hold
      // the published mapping and the exclusive latch.
      st = TryRepairPage(page, FrameData(frame));
    }
    if (st.ok() &&
        prefetch_error_count_.load(std::memory_order_acquire) != 0) {
      // A stale recorded prefetch failure for this page is obsolete now
      // that a fresh read succeeded; drop it so it can't fail a future fix.
      (void)TakePrefetchError(page);
    }
    if (!st.ok()) {
      table_->EraseIf(page, [](int) { return true; });
      f.page.store(kInvalidPageNum, std::memory_order_relaxed);
      f.latch.ReleaseExclusive();
      // A fixer may have pinned through the short-lived mapping; only
      // reuse the frame if this was the sole pin (otherwise it is
      // sacrificed — a corrupt-volume path not worth a use-after-free).
      if (f.pins.fetch_sub(1, std::memory_order_release) == 1) {
        free_frames_.Push(static_cast<uint32_t>(frame));
      }
      return st;
    }
  } else {
    // New page: hand out a deterministic all-zero image. The frame (or
    // the arena itself, after a manager restart in the same process) may
    // hold a stale page whose header still validates — recovery's
    // page-LSN idempotence checks must never be fooled by such garbage
    // into keeping uncommitted bytes.
    std::memset(FrameData(frame), 0, kPageSize);
  }
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  return frame;
}

Result<int> BufferPool::AllocateFrame() {
  if (auto idx = free_frames_.Pop()) {
    // Uncontended: free frames are unlatched (released before every Push).
    frames_[*idx].latch.AcquireExclusive();
    return static_cast<int>(*idx);
  }

  const size_t n = frames_.size();
  const bool early_release = options_.release_clock_hand_early;
  clock_lock_.lock();
  for (size_t step = 0; step < 3 * n; ++step) {
    size_t h = clock_hand_.fetch_add(1, std::memory_order_relaxed) % n;
    Frame& f = frames_[h];
    PageNum victim = f.page.load(std::memory_order_acquire);
    if (victim == kInvalidPageNum) continue;
    if (f.pins.load(std::memory_order_acquire) != 0) continue;
    if (f.referenced.exchange(false, std::memory_order_acq_rel)) {
      continue;  // Second chance.
    }
    // Take the frame latch exclusive BEFORE claiming the mapping, and keep
    // it until the successor image is published (HandleMiss's read lands /
    // FinishPrefetch installs). This is what makes optimistic readers
    // safe against recycling: a reader that stamped this frame for its old
    // occupant either observes the exclusive bit (invalid stamp) or fails
    // Validate() on the version bump at release — it can never validate
    // the half-overwritten successor bytes. TryAcquire, not Acquire: a
    // latched frame (cleaner write-back, late fixer) is simply not a
    // victim this lap.
    if (!f.latch.TryAcquire(sync::LatchMode::kExclusive)) continue;
    // Candidate found. Shore-MT releases the hand before the (possibly
    // slow) eviction so other misses can search in parallel (§7.6).
    if (early_release) clock_lock_.unlock();

    // Announce in-transit-out BEFORE claiming the mapping. A reader that
    // misses because the claim just erased the mapping must observe this
    // entry and wait for the write-back; announcing after the claim left
    // a window where the reader re-read the page's stale volume image
    // while the dirty copy was still in flight (lost updates). The frame
    // cannot be checked for dirtiness yet — that is only stable once the
    // claim has verified pins == 0 — so clean evictions transit too,
    // briefly.
    in_transit_.Add(victim);
    bool claimed = table_->EraseIf(victim, [&](int mapped) {
      // All three legs matter: the mapping must still target THIS frame
      // (the page may have been evicted and re-read into another frame
      // while we held a stale candidate — erasing would orphan the live
      // copy), the frame must be unpinned, and it must still hold the
      // victim.
      return mapped == static_cast<int>(h) &&
             f.pins.load(std::memory_order_relaxed) == 0 &&
             f.page.load(std::memory_order_relaxed) == victim;
    });
    if (claimed) {
      stats_.evictions.fetch_add(1, std::memory_order_relaxed);
      Status st = Status::Ok();
      if (f.dirty.load(std::memory_order_acquire)) {
        st = WriteBack(static_cast<int>(h), victim);
        stats_.dirty_writebacks.fetch_add(1, std::memory_order_relaxed);
        // Drop the dirty-page table entry BEFORE clearing in-transit: a
        // re-read of this page (which waits on the transit entry) may
        // re-dirty it and insert a fresh DPT entry we must not erase. On
        // write-back failure the entry is kept — conservative, the redo
        // bound must still cover the lost write.
        if (st.ok()) dpt_.Erase(victim);
      }
      in_transit_.Remove(victim);
      if (!early_release) clock_lock_.unlock();
      if (!st.ok()) {
        // Write-back failed: the mapping is gone; surface the error and
        // leave the frame free (its contents are still intact on failure
        // but the page image can be re-read from the log/volume).
        f.latch.ReleaseExclusive();
        free_frames_.Push(static_cast<uint32_t>(h));
        return st;
      }
      f.page.store(kInvalidPageNum, std::memory_order_relaxed);
      f.dirty.store(false, std::memory_order_relaxed);
      f.rec_lsn.store(0, std::memory_order_relaxed);
      // Still latched exclusive — the caller publishes the new image and
      // releases (bumping the version past every stale optimistic stamp).
      return static_cast<int>(h);
    }
    f.latch.ReleaseExclusive();  // Claim lost: the occupant stays.
    in_transit_.Remove(victim);  // Nothing is in transit.
    if (early_release) clock_lock_.lock();
  }
  clock_lock_.unlock();
  return Status::Busy("no evictable frame found");
}

Status BufferPool::WriteBack(int frame, PageNum page) {
  if (log_flush_) {
    Lsn page_lsn{page::HeaderOf(FrameData(frame))->page_lsn};
    SHOREMT_RETURN_NOT_OK(log_flush_(page_lsn));  // WAL: log first.
  }
  // Stamp the image's checksum immediately before it leaves the pool (the
  // caller guarantees a stable image: eviction owns the claimed frame,
  // FlushPage holds the shared latch; the checksum word itself is written
  // through an atomic so concurrent stampers of an identical image are
  // benign).
  page::StampPageChecksum(FrameData(frame));
  // Route through the async spine like every other write-back so the one
  // retry/accounting/fault-injection choke point covers synchronous
  // evictions too; a one-page ring drain is the synchronous submit.
  auto ring = io_->CreateRing();
  ring->QueueWrite(page, FrameData(frame));
  ring->Submit();
  return ring->Drain();
}

Status BufferPool::FlushPage(PageNum page) {
  int frame = table_->FindAndPin(page, [&](int f) {
    frames_[f].pins.fetch_add(1, std::memory_order_acquire);
  });
  if (frame < 0) return Status::Ok();  // Not cached: nothing to do.
  Frame& f = frames_[frame];
  f.latch.AcquireShared();
  Status st = Status::Ok();
  if (f.dirty.load(std::memory_order_acquire)) {
    st = WriteBack(frame, page);
    if (st.ok()) {
      f.dirty.store(false, std::memory_order_release);
      f.rec_lsn.store(0, std::memory_order_relaxed);
      dpt_.Erase(page);
    }
  }
  f.latch.ReleaseShared();
  f.Unpin();
  return st;
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    PageNum page = f.page.load(std::memory_order_acquire);
    if (page == kInvalidPageNum) continue;
    if (!f.dirty.load(std::memory_order_acquire)) continue;
    SHOREMT_RETURN_NOT_OK(FlushPage(page));
  }
  return Status::Ok();
}

Lsn BufferPool::ScanMinRecLsn() const {
  uint64_t min_lsn = 0;
  for (const Frame& f : frames_) {
    if (f.page.load(std::memory_order_acquire) == kInvalidPageNum) continue;
    if (!f.dirty.load(std::memory_order_acquire)) continue;
    uint64_t r = f.rec_lsn.load(std::memory_order_acquire);
    if (r != 0 && (min_lsn == 0 || r < min_lsn)) min_lsn = r;
  }
  return Lsn{min_lsn};
}

Status BufferPool::CleanerPass(size_t max_pages) {
  return CleanerPassImpl(max_pages, 0, 1);
}

Status BufferPool::CleanerPassImpl(size_t max_pages, size_t partition,
                                   size_t partitions) {
  stats_.cleaner_sweeps.fetch_add(1, std::memory_order_relaxed);
  // Copy the owner-wired hooks under the cleaner mutex: they are set
  // after construction, possibly while the daemon is already running.
  LsnProviderFn lsn_provider;
  std::function<void()> writeback_hook;
  {
    std::lock_guard<std::mutex> guard(hooks_mutex_);
    lsn_provider = lsn_provider_;
    writeback_hook = cleaner_writeback_hook_;
  }
  // With an LSN provider the sweep-start LSN is the published redo point
  // for a FULL sweep (strictly safe, see SetLsnProvider); otherwise fall
  // back to the paper's newest-seen approximation. The dirty-page table
  // supersedes both when it still holds entries after the pass.
  uint64_t sweep_start_lsn = lsn_provider ? lsn_provider().value : 0;
  uint64_t newest_seen = cleaner_lsn_.load(std::memory_order_relaxed);
  Status first_error = Status::Ok();

  // Gather phase. Oldest-first: writing back the pages that pin the
  // minimum rec_lsn is what advances the redo low-water mark (and the log
  // recycle horizon). Every page is claimed non-blockingly — TryAcquire
  // because the cleaner ends up holding many latches at once and must
  // never block on one (a fixer holding this page exclusive may itself be
  // waiting on a latch the cleaner already gathered), and TryAdd because
  // an eviction may already have the page in transit.
  struct Gathered {
    PageNum page;
    int frame;
  };
  std::vector<Gathered> batch;
  for (PageNum page : dpt_.OldestPages(max_pages)) {
    if (partitions > 1 && page % partitions != partition) continue;
    // Pin through the locked path so eviction cannot race us.
    int frame = table_->FindAndPin(page, [&](int fr) {
      frames_[fr].pins.fetch_add(1, std::memory_order_acquire);
    });
    if (frame < 0) continue;  // Evicted (and thus written) meanwhile.
    Frame& pf = frames_[frame];
    if (!pf.latch.TryAcquire(sync::LatchMode::kShared)) {
      pf.Unpin();  // Contended: the next pass will retry this page.
      continue;
    }
    if (pf.page.load(std::memory_order_acquire) != page ||
        !pf.dirty.load(std::memory_order_acquire) ||
        !in_transit_.TryAdd(page)) {
      pf.latch.ReleaseShared();
      pf.Unpin();
      continue;
    }
    batch.push_back({page, frame});
  }
  if (batch.empty()) {
    Lsn dpt_min = dpt_.MinRecLsn();
    uint64_t publish = !dpt_min.IsNull()
                           ? dpt_min.value
                           : (lsn_provider ? sweep_start_lsn : newest_seen);
    cleaner_lsn_.store(publish, std::memory_order_release);
    return Status::Ok();
  }

  // Page-id order maximizes adjacent runs for the ring's coalescing.
  std::sort(batch.begin(), batch.end(),
            [](const Gathered& a, const Gathered& b) {
              return a.page < b.page;
            });

  // WAL once for the whole batch: a single flush to the max page LSN
  // covers every member (this replaces one flush per page).
  uint64_t batch_max_lsn = 0;
  for (const Gathered& g : batch) {
    batch_max_lsn = std::max(batch_max_lsn,
                             page::HeaderOf(FrameData(g.frame))->page_lsn);
    newest_seen = std::max(newest_seen,
                           page::HeaderOf(FrameData(g.frame))->page_lsn);
  }
  if (log_flush_) {
    Status st = log_flush_(Lsn{batch_max_lsn});
    if (!st.ok()) {
      // Nothing was submitted: unwind every claim and report.
      for (const Gathered& g : batch) {
        in_transit_.Remove(g.page);
        frames_[g.frame].latch.ReleaseShared();
        frames_[g.frame].Unpin();
      }
      return st;
    }
  }

  // Submit the batch as coalesced vectored writes; each page's completion
  // (on the I/O worker) clears its dirty state and releases its claim, so
  // fixers blocked on a latch or the transit entry resume as soon as THAT
  // page lands, not when the whole batch drains. DPT erase precedes the
  // transit remove — a re-read waiting on the entry may re-dirty the page
  // and insert a fresh DPT record we must not clobber (same rule as the
  // eviction path).
  auto ring = io_->CreateRing();
  for (const Gathered& g : batch) {
    PageNum page = g.page;
    int frame = g.frame;
    // Fresh checksum over the image the device will see (stable under the
    // shared latch held since the gather).
    page::StampPageChecksum(FrameData(frame));
    ring->QueueWrite(page, FrameData(frame),
                     [this, page, frame, &writeback_hook](PageNum, Status st) {
                       Frame& pf = frames_[frame];
                       if (st.ok()) {
                         pf.dirty.store(false, std::memory_order_release);
                         pf.rec_lsn.store(0, std::memory_order_relaxed);
                         dpt_.Erase(page);
                         stats_.cleaner_writes.fetch_add(
                             1, std::memory_order_relaxed);
                         if (writeback_hook) writeback_hook();
                       }
                       in_transit_.Remove(page);
                       pf.latch.ReleaseShared();
                       pf.Unpin();
                     });
  }
  ring->Submit();
  // Drain keeps the pass synchronous from the daemon's point of view
  // (the next wake-up starts from a settled dirty-page table) and blocks
  // until every callback has run — which is what makes the by-reference
  // hook capture above safe.
  first_error = ring->Drain();
  stats_.cleaner_batches.fetch_add(1, std::memory_order_relaxed);

  // Publish the low-water mark: the dirty-page table's incremental min is
  // exact while entries remain; after a drained (full) pass fall back to
  // the §7.7 publication so CleanerTrackedLsn keeps its historical
  // meaning for the stage-comparison benches.
  Lsn dpt_min = dpt_.MinRecLsn();
  uint64_t publish = !dpt_min.IsNull()
                         ? dpt_min.value
                         : (lsn_provider ? sweep_start_lsn : newest_seen);
  cleaner_lsn_.store(publish, std::memory_order_release);
  return first_error;
}

size_t BufferPool::PrefetchPages(std::span<const PageNum> pages) {
  if (options_.prefetch_window == 0) return 0;
  size_t issued = 0;
  for (PageNum page : pages) {
    if (page == kInvalidPageNum) continue;
    if (prefetch_inflight_.load(std::memory_order_relaxed) >=
        options_.prefetch_window) {
      stats_.prefetch_dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (table_->FindOptimistic(page) >= 0) continue;  // Already resident.
    // Claim the page's device image. The entry makes concurrent fixers
    // wait (FixPage's miss path) instead of double-reading, and excludes
    // a concurrent prefetch of the same page.
    if (!in_transit_.TryAdd(page)) continue;
    // Recheck under the claim: a fixer that probed before our TryAdd may
    // have installed the mapping already (it could not AFTER the claim —
    // its miss path waits on the entry).
    if (table_->FindOptimistic(page) >= 0) {
      in_transit_.Remove(page);
      continue;
    }
    auto fr = AllocateFrame();
    if (!fr.ok()) {
      in_transit_.Remove(page);
      stats_.prefetch_dropped.fetch_add(1, std::memory_order_relaxed);
      continue;  // No evictable frame: shed, don't block a scan on this.
    }
    int frame = *fr;
    prefetch_inflight_.fetch_add(1, std::memory_order_relaxed);
    Status st = io_->TrySubmitDetached(
        io::IoOpKind::kRead, page, FrameData(frame),
        [this, frame](PageNum p, Status s) { FinishPrefetch(frame, p, s); });
    if (!st.ok()) {
      // Slots exhausted: undo the claim and recycle the frame (released
      // first — free frames are unlatched by invariant).
      prefetch_inflight_.fetch_sub(1, std::memory_order_relaxed);
      in_transit_.Remove(page);
      frames_[frame].latch.ReleaseExclusive();
      free_frames_.Push(static_cast<uint32_t>(frame));
      stats_.prefetch_dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    stats_.prefetch_issued.fetch_add(1, std::memory_order_relaxed);
    ++issued;
  }
  return issued;
}

void BufferPool::FinishPrefetch(int frame, PageNum page, Status st) {
  Frame& f = frames_[frame];
  bool installed = false;
  if (st.ok() && !page::VerifyPageChecksum(FrameData(frame))) {
    // Damaged image off the device. Repair must not run here — worker
    // callbacks may not block on more I/O — so just refuse to install:
    // the fixer's synchronous miss path re-reads, re-detects, and runs
    // the repairer in thread context. Count the detection, not an error.
    stats_.checksum_failures.fetch_add(1, std::memory_order_relaxed);
    st = Status::Corruption("prefetched page failed checksum");
    // Deliberately NOT recorded in prefetch_errors_: the sync path can
    // still repair this page, so no waiter should fail on it.
  } else if (!st.ok()) {
    // A real device error that survived the worker-side retry budget:
    // park it for the fixer that waited on the in-transit entry, so the
    // failure reaches the thread that wanted the page instead of being
    // silently replayed as a second device read. Bounded map — under
    // pathological storms the oldest errors just age out via consumption
    // or the cap, and the fix falls back to its own read.
    stats_.prefetch_errors.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> guard(prefetch_err_mutex_);
    if (prefetch_errors_.size() < 128) {
      prefetch_errors_.emplace(page, st);
      prefetch_error_count_.store(prefetch_errors_.size(),
                                  std::memory_order_release);
    }
  }
  if (st.ok()) {
    // Publish unpinned: the image is complete (this runs after the device
    // call), so the first fixer pins an ordinary hit.
    f.pins.store(0, std::memory_order_relaxed);
    f.dirty.store(false, std::memory_order_relaxed);
    f.rec_lsn.store(0, std::memory_order_relaxed);
    f.referenced.store(true, std::memory_order_relaxed);
    f.page.store(page, std::memory_order_release);
    if (table_->Insert(page, frame)) {
      installed = true;
      stats_.prefetch_installed.fetch_add(1, std::memory_order_relaxed);
    } else {
      // A NewPage of a recycled page id won the table; yield our copy.
      f.page.store(kInvalidPageNum, std::memory_order_relaxed);
    }
  }
  // Drop the exclusive hold taken at claim time (AllocateFrame); the
  // version bump fails any optimistic stamp that straddled the device
  // read into this frame. Released before the Push: free frames are
  // unlatched by invariant.
  f.latch.ReleaseExclusive();
  if (!installed) free_frames_.Push(static_cast<uint32_t>(frame));
  // Clear the claim LAST: waiters re-probe and now find the mapping.
  in_transit_.Remove(page);
  prefetch_inflight_.fetch_sub(1, std::memory_order_relaxed);
}

Status BufferPool::ScrubPass(size_t max_pages) {
  if (max_pages == 0) return Status::Ok();
  PageNum end = volume_->NumPages();
  if (end <= 1) return Status::Ok();
  // Private aligned scratch: the scrubber never reads into pool frames
  // (a cold page must stay cold — verifying it should not evict anything)
  // and FileVolume may be running O_DIRECT.
  std::unique_ptr<uint8_t[], FreeDeleter> scratch(
      static_cast<uint8_t*>(std::aligned_alloc(4096, kPageSize)));
  io::RetryPolicy policy{options_.io.max_retries,
                         options_.io.retry_initial_backoff_ns,
                         options_.io.retry_max_backoff_ns};
  Status first_error = Status::Ok();
  size_t verified = 0;
  PageNum cursor = scrub_cursor_.load(std::memory_order_relaxed);
  // `max_pages` bounds the device reads per pass — together with the
  // daemon interval that is the scrubber's I/O rate limit. One lap of the
  // volume bounds the walk when everything is resident or in transit.
  for (PageNum steps = 0; steps < end && verified < max_pages; ++steps) {
    if (cursor == kInvalidPageNum || cursor >= end) cursor = 1;
    PageNum page = cursor++;
    // Resident pages are skipped: their media image is refreshed (with a
    // new checksum) by the next write-back, and the frame copy is
    // authoritative anyway.
    if (table_->FindOptimistic(page) >= 0) continue;
    // Claim the device image so a concurrent fix/prefetch/eviction of the
    // same page waits instead of racing the scrub read (same protocol as
    // prefetch). Busy pages are simply skipped this lap.
    if (!in_transit_.TryAdd(page)) continue;
    if (table_->FindOptimistic(page) >= 0) {
      in_transit_.Remove(page);  // Became resident before the claim.
      continue;
    }
    Status st = io::RetryTransient(volume_, policy, [&] {
      return volume_->ReadPage(page, scratch.get());
    });
    if (st.ok()) {
      ++verified;
      stats_.scrub_pages.fetch_add(1, std::memory_order_relaxed);
      if (!page::VerifyPageChecksum(scratch.get())) {
        st = TryRepairPage(page, scratch.get());
      }
    }
    if (!st.ok() && first_error.ok()) first_error = st;
    in_transit_.Remove(page);
  }
  scrub_cursor_.store(cursor, std::memory_order_relaxed);
  return first_error;
}

void BufferPool::UnfixInternal(int frame, sync::LatchMode mode) {
  Frame& f = frames_[frame];
  f.latch.Release(mode);
  f.Unpin();
}

}  // namespace shoremt::buffer
