#ifndef SHOREMT_BUFFER_IN_TRANSIT_H_
#define SHOREMT_BUFFER_IN_TRANSIT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace shoremt::buffer {

/// Tracks pages whose dirty contents are being written out ("in-transit-
/// out", §6.2.3 / §7.6). A page miss must not re-read a page that is still
/// being flushed, so readers wait here until the writer removes the entry.
///
/// `shards` = 1 reproduces original Shore's single global transit list
/// (one mutex, long chains); Shore-MT distributes it across 128 lists,
/// each of which in practice holds at most one element because page
/// cleaning makes dirty evictions rare.
class InTransitTable {
 public:
  explicit InTransitTable(int shards)
      : shards_(static_cast<size_t>(shards)), table_(shards_) {}

  InTransitTable(const InTransitTable&) = delete;
  InTransitTable& operator=(const InTransitTable&) = delete;

  /// Registers `page` as being written out.
  void Add(PageNum page) {
    Shard& s = ShardFor(page);
    std::lock_guard<std::mutex> guard(s.mutex);
    s.pages.push_back(page);
    adds_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Registers `page` unless an entry already exists; false when it does.
  /// The async consumers (prefetch reads, batched cleaner write-backs)
  /// use this as their claim on the page's device image: whoever holds
  /// the entry is the only mover, everyone else skips or waits.
  bool TryAdd(PageNum page) {
    Shard& s = ShardFor(page);
    std::lock_guard<std::mutex> guard(s.mutex);
    for (PageNum p : s.pages) {
      if (p == page) return false;
    }
    s.pages.push_back(page);
    adds_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Removes `page` and wakes any waiting readers.
  void Remove(PageNum page) {
    Shard& s = ShardFor(page);
    {
      std::lock_guard<std::mutex> guard(s.mutex);
      for (size_t i = 0; i < s.pages.size(); ++i) {
        if (s.pages[i] == page) {
          s.pages[i] = s.pages.back();
          s.pages.pop_back();
          break;
        }
      }
    }
    s.cv.notify_all();
  }

  /// Blocks until `page` is no longer in transit (no-op if it never was).
  /// Returns true when it actually had to wait — callers such as the miss
  /// path use that to re-probe the frame table, because the completion
  /// that cleared the entry may have installed the page.
  bool WaitUntilClear(PageNum page) {
    Shard& s = ShardFor(page);
    std::unique_lock<std::mutex> guard(s.mutex);
    bool waited = false;
    s.cv.wait(guard, [&] {
      for (PageNum p : s.pages) {
        if (p == page) {
          waited = true;
          return false;
        }
      }
      return true;
    });
    if (waited) waits_.fetch_add(1, std::memory_order_relaxed);
    return waited;
  }

  uint64_t adds() const { return adds_.load(std::memory_order_relaxed); }
  uint64_t waits() const { return waits_.load(std::memory_order_relaxed); }

 private:
  struct Shard {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<PageNum> pages;
  };

  Shard& ShardFor(PageNum page) { return table_[page % shards_]; }

  size_t shards_;
  std::vector<Shard> table_;
  std::atomic<uint64_t> adds_{0};
  std::atomic<uint64_t> waits_{0};
};

}  // namespace shoremt::buffer

#endif  // SHOREMT_BUFFER_IN_TRANSIT_H_
