#include "buffer/frame_table.h"

#include <atomic>
#include <bit>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "sync/spinlock.h"

namespace shoremt::buffer {

namespace {

// ------------------------------------------------------------ baseline ----

/// One std::unordered_map behind one global mutex: original Shore's design
/// ("a single, global mutex that very quickly became contended", §7.2).
class GlobalChainedTable : public FrameTable {
 public:
  explicit GlobalChainedTable(size_t capacity) { map_.reserve(capacity); }

  int FindOptimistic(PageNum page) const override {
    // No meaningful lock-free path exists for this strategy; fall back to
    // the locked lookup semantics by returning "not found".
    return -1;
  }

  int FindAndPin(PageNum page,
                 const std::function<void(int)>& pin) override {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = map_.find(page);
    if (it == map_.end()) return -1;
    pin(it->second);
    return it->second;
  }

  bool Insert(PageNum page, int frame) override {
    std::lock_guard<std::mutex> guard(mutex_);
    return map_.emplace(page, frame).second;
  }

  bool EraseIf(PageNum page,
               const std::function<bool(int)>& check) override {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = map_.find(page);
    if (it == map_.end() || !check(it->second)) return false;
    map_.erase(it);
    return true;
  }

  size_t Size() const override {
    std::lock_guard<std::mutex> guard(mutex_);
    return map_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<PageNum, int> map_;
};

// ------------------------------------------------------- per-bucket -------

/// Chained hash table with one spinlock per bucket (Shore-MT "bpool 1").
class PerBucketChainedTable : public FrameTable {
 public:
  explicit PerBucketChainedTable(size_t capacity)
      : mask_(std::bit_ceil(capacity * 2) - 1), buckets_(mask_ + 1) {}

  int FindOptimistic(PageNum page) const override {
    // Bucket chains may be rehoused concurrently; optimistic reads of a
    // std::vector are unsafe, so this strategy has no lock-free path.
    return -1;
  }

  int FindAndPin(PageNum page,
                 const std::function<void(int)>& pin) override {
    Bucket& b = BucketFor(page);
    std::lock_guard<sync::TtasLock> guard(b.lock);
    for (const Entry& e : b.entries) {
      if (e.page == page) {
        pin(e.frame);
        return e.frame;
      }
    }
    return -1;
  }

  bool Insert(PageNum page, int frame) override {
    Bucket& b = BucketFor(page);
    std::lock_guard<sync::TtasLock> guard(b.lock);
    for (const Entry& e : b.entries) {
      if (e.page == page) return false;
    }
    b.entries.push_back({page, frame});
    return true;
  }

  bool EraseIf(PageNum page,
               const std::function<bool(int)>& check) override {
    Bucket& b = BucketFor(page);
    std::lock_guard<sync::TtasLock> guard(b.lock);
    for (size_t i = 0; i < b.entries.size(); ++i) {
      if (b.entries[i].page == page) {
        if (!check(b.entries[i].frame)) return false;
        b.entries[i] = b.entries.back();
        b.entries.pop_back();
        return true;
      }
    }
    return false;
  }

  size_t Size() const override {
    size_t n = 0;
    for (const Bucket& b : buckets_) {
      std::lock_guard<sync::TtasLock> guard(b.lock);
      n += b.entries.size();
    }
    return n;
  }

 private:
  struct Entry {
    PageNum page;
    int frame;
  };
  struct Bucket {
    mutable sync::TtasLock lock;
    std::vector<Entry> entries;
  };

  Bucket& BucketFor(PageNum page) {
    return buckets_[Mix(page) & mask_];
  }
  const Bucket& BucketFor(PageNum page) const {
    return buckets_[Mix(page) & mask_];
  }
  static uint64_t Mix(PageNum page) {
    uint64_t x = page * 0x9e3779b97f4a7c15ULL;
    return x ^ (x >> 32);
  }

  size_t mask_;
  std::vector<Bucket> buckets_;
};

// ------------------------------------------------------------ cuckoo ------

/// 3-ary cuckoo hash table (§6.2.3): three independent multiply-shift hash
/// functions give each page three legal slots; a collision evicts some
/// resident entry into one of its alternates. Searches and updates only
/// interfere when they touch the same slot. Slots are guarded by segment
/// spinlocks (one lock per kSegmentShift slots); relocations bump a global
/// sequence number so synchronized probes can detect "entry moved past me"
/// races and retry.
class CuckooTable : public FrameTable {
 public:
  explicit CuckooTable(size_t capacity)
      : slot_count_(std::bit_ceil(capacity * 2)),
        shift_(64 - static_cast<int>(std::countr_zero(slot_count_))),
        slots_(slot_count_),
        seg_locks_(kSegments) {
    // Three odd multipliers drawn from a fixed-seed generator: this is the
    // "combine universal hash functions" remedy for clustering (§6.2.3
    // footnote 8).
    Rng rng(0xc0ffee);
    for (int i = 0; i < kWays; ++i) mul_[i] = rng.Next() | 1;
  }

  int FindOptimistic(PageNum page) const override {
    for (int w = 0; w < kWays; ++w) {
      const Slot& s = slots_[SlotIndex(page, w)];
      if (s.page.load(std::memory_order_acquire) == page) {
        return s.frame.load(std::memory_order_relaxed);
      }
    }
    if (overflow_in_use_.load(std::memory_order_acquire)) {
      std::lock_guard<sync::TtasLock> guard(overflow_lock_);
      auto it = overflow_.find(page);
      if (it != overflow_.end()) return it->second;
    }
    return -1;
  }

  int FindAndPin(PageNum page,
                 const std::function<void(int)>& pin) override {
    for (;;) {
      uint64_t seq_before = reloc_seq_.load(std::memory_order_acquire);
      for (int w = 0; w < kWays; ++w) {
        size_t idx = SlotIndex(page, w);
        std::lock_guard<sync::TtasLock> guard(LockFor(idx));
        Slot& s = slots_[idx];
        if (s.page.load(std::memory_order_relaxed) == page) {
          int frame = s.frame.load(std::memory_order_relaxed);
          pin(frame);
          return frame;
        }
      }
      if (overflow_in_use_.load(std::memory_order_acquire)) {
        std::lock_guard<sync::TtasLock> guard(overflow_lock_);
        auto it = overflow_.find(page);
        if (it != overflow_.end()) {
          pin(it->second);
          return it->second;
        }
      }
      // A concurrent relocation may have moved the entry from a slot we
      // had not probed yet into one we had already passed; retry.
      if (reloc_seq_.load(std::memory_order_acquire) == seq_before) {
        return -1;
      }
    }
  }

  bool Insert(PageNum page, int frame) override {
    // Inserts are serialized with one lock: they happen only on buffer
    // misses (already I/O-scale events), and this makes the
    // check-absent-then-place sequence atomic against a concurrent insert
    // of the same page. Lookups and erases stay fine-grained.
    std::lock_guard<sync::TtasLock> insert_guard(insert_lock_);
    if (FindSynchronized(page) >= 0) return false;
    TryPlace(page, frame, kMaxKicks);
    return true;
  }

  bool EraseIf(PageNum page,
               const std::function<bool(int)>& check) override {
    for (;;) {
      uint64_t seq_before = reloc_seq_.load(std::memory_order_acquire);
      for (int w = 0; w < kWays; ++w) {
        size_t idx = SlotIndex(page, w);
        std::lock_guard<sync::TtasLock> guard(LockFor(idx));
        Slot& s = slots_[idx];
        if (s.page.load(std::memory_order_relaxed) == page) {
          if (!check(s.frame.load(std::memory_order_relaxed))) return false;
          s.page.store(kInvalidPageNum, std::memory_order_release);
          return true;
        }
      }
      {
        std::lock_guard<sync::TtasLock> guard(overflow_lock_);
        auto it = overflow_.find(page);
        if (it != overflow_.end()) {
          if (!check(it->second)) return false;
          overflow_.erase(it);
          if (overflow_.empty()) {
            overflow_in_use_.store(false, std::memory_order_release);
          }
          return true;
        }
      }
      if (reloc_seq_.load(std::memory_order_acquire) == seq_before) {
        return false;
      }
    }
  }

  size_t Size() const override {
    size_t n = 0;
    for (const Slot& s : slots_) {
      if (s.page.load(std::memory_order_relaxed) != kInvalidPageNum) ++n;
    }
    std::lock_guard<sync::TtasLock> guard(overflow_lock_);
    return n + overflow_.size();
  }

 private:
  static constexpr int kWays = 3;
  static constexpr int kMaxKicks = 32;
  static constexpr size_t kSegments = 1024;

  struct Slot {
    std::atomic<PageNum> page{kInvalidPageNum};
    std::atomic<int> frame{-1};
  };

  size_t SlotIndex(PageNum page, int way) const {
    return (mul_[way] * (page + 1)) >> shift_;
  }
  sync::TtasLock& LockFor(size_t slot_idx) const {
    return seg_locks_[slot_idx % kSegments];
  }

  int FindSynchronized(PageNum page) {
    int found = -1;
    FindAndPin(page, [&](int f) { found = f; });
    return found;
  }

  /// Attempts to place (page, frame), kicking residents along a random
  /// cuckoo path of at most `budget` displacements.
  bool TryPlace(PageNum page, int frame, int budget) {
    Rng rng(page * 0x2545f4914f6cdd1dULL + 1);
    PageNum cur_page = page;
    int cur_frame = frame;
    for (int kick = 0; kick < budget; ++kick) {
      // Try an empty slot among the candidates first.
      for (int w = 0; w < kWays; ++w) {
        size_t idx = SlotIndex(cur_page, w);
        std::lock_guard<sync::TtasLock> guard(LockFor(idx));
        Slot& s = slots_[idx];
        if (s.page.load(std::memory_order_relaxed) == kInvalidPageNum) {
          s.frame.store(cur_frame, std::memory_order_relaxed);
          s.page.store(cur_page, std::memory_order_release);
          if (cur_page != page) {
            reloc_seq_.fetch_add(1, std::memory_order_acq_rel);
          }
          return true;
        }
      }
      // All full: displace a random candidate and adopt its slot.
      int victim_way = static_cast<int>(rng.Uniform(kWays));
      size_t idx = SlotIndex(cur_page, victim_way);
      PageNum displaced_page;
      int displaced_frame;
      {
        std::lock_guard<sync::TtasLock> guard(LockFor(idx));
        Slot& s = slots_[idx];
        displaced_page = s.page.load(std::memory_order_relaxed);
        if (displaced_page == kInvalidPageNum) continue;  // Raced: retry.
        displaced_frame = s.frame.load(std::memory_order_relaxed);
        s.frame.store(cur_frame, std::memory_order_relaxed);
        s.page.store(cur_page, std::memory_order_release);
        reloc_seq_.fetch_add(1, std::memory_order_acq_rel);
      }
      cur_page = displaced_page;
      cur_frame = displaced_frame;
    }
    // Out of budget: the entry left homeless by the last displacement (the
    // original insert landed during the first kick) goes to the overflow
    // map so no mapping is ever lost. The paper instead drops
    // "troublesome" pages outright — legal for a cache, but strict
    // bookkeeping keeps our frame accounting exact.
    std::lock_guard<sync::TtasLock> guard(overflow_lock_);
    overflow_[cur_page] = cur_frame;
    overflow_in_use_.store(true, std::memory_order_release);
    return true;
  }

  size_t slot_count_;
  int shift_;
  uint64_t mul_[kWays];
  std::vector<Slot> slots_;
  mutable std::vector<sync::TtasLock> seg_locks_;
  std::atomic<uint64_t> reloc_seq_{0};
  sync::TtasLock insert_lock_;
  mutable sync::TtasLock overflow_lock_;
  std::unordered_map<PageNum, int> overflow_;
  std::atomic<bool> overflow_in_use_{false};
};

}  // namespace

std::unique_ptr<FrameTable> MakeFrameTable(TableKind kind, size_t capacity) {
  switch (kind) {
    case TableKind::kGlobalChained:
      return std::make_unique<GlobalChainedTable>(capacity);
    case TableKind::kPerBucketChained:
      return std::make_unique<PerBucketChainedTable>(capacity);
    case TableKind::kCuckoo:
      return std::make_unique<CuckooTable>(capacity);
  }
  return nullptr;
}

}  // namespace shoremt::buffer
