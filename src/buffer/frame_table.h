#ifndef SHOREMT_BUFFER_FRAME_TABLE_H_
#define SHOREMT_BUFFER_FRAME_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "common/types.h"

namespace shoremt::buffer {

/// Buffer pool hash table strategy (§6.2.3). Three implementations trace
/// Shore-MT's evolution: one global mutex (baseline), chained with
/// per-bucket locks (bpool 1), and a 3-ary cuckoo table (log stage).
enum class TableKind : uint8_t {
  kGlobalChained,
  kPerBucketChained,
  kCuckoo,
};

/// Maps PageNum → frame index with strategy-specific synchronization.
///
/// Pinning protocol contract: pinning a frame whose pin count is zero is
/// only safe under the same lock that an evictor takes in EraseIf — the
/// `pin` / `check` callbacks run under that lock. The lock-free
/// FindOptimistic is only for the pin-if-pinned fast path, which verifies
/// the frame's page id after pinning.
class FrameTable {
 public:
  virtual ~FrameTable() = default;

  /// Lock-free candidate lookup; may return a stale frame index. Returns
  /// -1 when not found.
  virtual int FindOptimistic(PageNum page) const = 0;

  /// Synchronized lookup: if `page` is mapped, invokes `pin(frame)` while
  /// holding the internal lock covering that mapping and returns the frame
  /// index; returns -1 if absent.
  virtual int FindAndPin(PageNum page,
                         const std::function<void(int)>& pin) = 0;

  /// Inserts page→frame; fails (returns false) if the page is already
  /// mapped.
  virtual bool Insert(PageNum page, int frame) = 0;

  /// Removes the mapping if `check(frame)` approves it, where `frame` is
  /// the index the mapping currently points to (the callback runs under
  /// the lock covering the mapping; an evictor must verify the mapping
  /// still targets *its* candidate frame and that the frame is unpinned —
  /// validating a stale candidate while the page was remapped elsewhere
  /// would erase the live copy's mapping). Returns true if removed, false
  /// if absent or vetoed.
  virtual bool EraseIf(PageNum page,
                       const std::function<bool(int)>& check) = 0;

  /// Approximate number of mappings (diagnostics only).
  virtual size_t Size() const = 0;
};

/// Creates a table able to map up to `capacity` frames.
std::unique_ptr<FrameTable> MakeFrameTable(TableKind kind, size_t capacity);

}  // namespace shoremt::buffer

#endif  // SHOREMT_BUFFER_FRAME_TABLE_H_
