#include "btree/btree.h"

#include <cstring>
#include <utility>

#include "btree/btree_node.h"
#include "obs/metrics.h"
#include "page/page.h"

namespace shoremt::btree {

using buffer::PageHandle;
using sync::LatchMode;

// ---------------------------------------------------------------------------
// Torn-tolerant node readers for the optimistic descent. These run against
// a LIVE page image that a concurrent exclusive holder may be rewriting:
// every load can return garbage, and the caller trusts nothing until the
// node's HybridLatch validates. The rules of SHOREMT_NO_SANITIZE_THREAD
// apply — loads only, every index clamped before use (a torn count must
// never walk past the page), no libcalls over the shared bytes.

namespace {

constexpr size_t kNodeHeaderOff = sizeof(page::PageHeader);
constexpr size_t kEntriesOff =
    kNodeHeaderOff + sizeof(BTreeNode::NodeHeader);

SHOREMT_NO_SANITIZE_THREAD
inline void OptReadHeader(const uint8_t* d, uint16_t* count,
                          uint16_t* level) {
  const auto* nh =
      reinterpret_cast<const BTreeNode::NodeHeader*>(d + kNodeHeaderOff);
  uint16_t c = nh->count;
  // Clamp: a torn count (up to 65535) must never index past the entry
  // array — validation rejects the result either way.
  *count = c > BTreeNode::kMaxEntries
               ? static_cast<uint16_t>(BTreeNode::kMaxEntries)
               : c;
  *level = nh->level;
}

SHOREMT_NO_SANITIZE_THREAD
inline uint16_t OptLowerBound(const uint8_t* d, uint16_t count,
                              uint64_t key) {
  const auto* e = reinterpret_cast<const BTreeEntry*>(d + kEntriesOff);
  uint16_t lo = 0, hi = count;
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>(lo + (hi - lo) / 2);
    if (e[mid].key < key) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

SHOREMT_NO_SANITIZE_THREAD
inline PageNum OptChildFor(const uint8_t* d, uint16_t count, uint64_t key) {
  const auto* nh =
      reinterpret_cast<const BTreeNode::NodeHeader*>(d + kNodeHeaderOff);
  const auto* e = reinterpret_cast<const BTreeEntry*>(d + kEntriesOff);
  uint16_t i = OptLowerBound(d, count, key);
  if (i < count && e[i].key == key) return e[i].value;
  if (i == 0) return nh->leftmost_child;
  return e[i - 1].value;
}

SHOREMT_NO_SANITIZE_THREAD
inline bool OptFindLeaf(const uint8_t* d, uint16_t count, uint64_t key,
                        uint64_t* value) {
  const auto* e = reinterpret_cast<const BTreeEntry*>(d + kEntriesOff);
  uint16_t i = OptLowerBound(d, count, key);
  if (i < count && e[i].key == key) {
    *value = e[i].value;
    return true;
  }
  return false;
}

SHOREMT_NO_SANITIZE_THREAD
inline PageNum OptNextPage(const uint8_t* d) {
  return reinterpret_cast<const page::PageHeader*>(d)->next_page;
}

/// Copies entries [from, count) whose key qualifies against `min_key`
/// into `out` (private memory — only the loads are racy).
SHOREMT_NO_SANITIZE_THREAD
inline void OptCopyTail(const uint8_t* d, uint16_t count, uint16_t from,
                        uint64_t min_key, bool exclusive,
                        std::vector<BTreeEntry>* out) {
  const auto* e = reinterpret_cast<const BTreeEntry*>(d + kEntriesOff);
  for (uint16_t i = from; i < count; ++i) {
    BTreeEntry copy{e[i].key, e[i].value};
    if (exclusive ? copy.key > min_key : copy.key >= min_key) {
      out->push_back(copy);
    }
  }
}

}  // namespace

BTree::BTree(buffer::BufferPool* pool, space::SpaceManager* space,
             log::LogManager* log, txn::TxnManager* txns, StoreId store,
             PageNum root, BTreeOptions options)
    : pool_(pool),
      space_(space),
      log_(log),
      txns_(txns),
      store_(store),
      root_(root),
      options_(options) {}

Status BTree::LogAndMark(txn::Transaction* txn, PageHandle* handle,
                         log::LogRecord rec) {
  if (txn != nullptr) {
    rec.txn = txn->id;
    rec.prev_lsn = txn->last_lsn;
  }
  SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(rec));
  if (txn != nullptr) txns_->NoteLogged(txn, a.lsn, a.end);
  handle->MarkDirty(a.end, a.lsn);
  return Status::Ok();
}

Result<PageNum> BTree::CreateRoot(buffer::BufferPool* pool,
                                  space::SpaceManager* space,
                                  log::LogManager* log, txn::TxnManager* txns,
                                  txn::Transaction* txn, StoreId store) {
  PageNum root_page = kInvalidPageNum;
  auto init = [&](PageNum page) -> Status {
    SHOREMT_ASSIGN_OR_RETURN(PageHandle h, pool->NewPage(page));
    BTreeNode node(h.data());
    node.Init(page, store, /*level=*/0);
    log::LogRecord rec;
    rec.type = log::LogRecordType::kPageFormat;
    rec.page = page;
    rec.store = store;
    rec.page_type = static_cast<uint8_t>(page::PageType::kBTreeLeaf);
    if (txn != nullptr) {
      rec.txn = txn->id;
      rec.prev_lsn = txn->last_lsn;
    }
    SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log->Append(rec));
    if (txn != nullptr) txns->NoteLogged(txn, a.lsn, a.end);
    h.MarkDirty(a.end, a.lsn);
    root_page = page;
    return Status::Ok();
  };
  SHOREMT_ASSIGN_OR_RETURN(PageNum page, space->AllocatePage(store, init));
  // Log the allocation for space-map recovery.
  log::LogRecord alloc;
  alloc.type = log::LogRecordType::kAllocPage;
  alloc.page = page;
  alloc.store = store;
  if (txn != nullptr) {
    alloc.txn = txn->id;
    alloc.prev_lsn = txn->last_lsn;
  }
  SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log->Append(alloc));
  if (txn != nullptr) txns->NoteLogged(txn, a.lsn, a.end);
  return root_page;
}

Result<PageHandle> BTree::NewNode(txn::Transaction* txn, uint16_t level,
                                  PageNum* page_out) {
  PageHandle out;
  auto init = [&](PageNum page) -> Status {
    SHOREMT_ASSIGN_OR_RETURN(PageHandle h, pool_->NewPage(page));
    BTreeNode node(h.data());
    node.Init(page, store_, level);
    log::LogRecord rec;
    rec.type = log::LogRecordType::kPageFormat;
    rec.page = page;
    rec.store = store_;
    rec.page_type = static_cast<uint8_t>(level == 0
                                             ? page::PageType::kBTreeLeaf
                                             : page::PageType::kBTreeInternal);
    SHOREMT_RETURN_NOT_OK(LogAndMark(txn, &h, std::move(rec)));
    out = std::move(h);
    return Status::Ok();
  };
  SHOREMT_ASSIGN_OR_RETURN(PageNum page, space_->AllocatePage(store_, init));
  log::LogRecord alloc;
  alloc.type = log::LogRecordType::kAllocPage;
  alloc.page = page;
  alloc.store = store_;
  SHOREMT_RETURN_NOT_OK(LogAndMark(txn, &out, std::move(alloc)));
  *page_out = page;
  return std::move(out);
}

Status BTree::SplitRoot(txn::Transaction* txn, PageHandle* root_handle) {
  stats_.splits.fetch_add(1, std::memory_order_relaxed);
  BTreeNode root(root_handle->data());
  PageNum left_page, right_page;
  SHOREMT_ASSIGN_OR_RETURN(PageHandle left_h, NewNode(txn, root.level(),
                                                      &left_page));
  SHOREMT_ASSIGN_OR_RETURN(PageHandle right_h, NewNode(txn, root.level(),
                                                       &right_page));
  BTreeNode left(left_h.data());
  BTreeNode right(right_h.data());

  // Clone the root into `left`, then split left → right.
  left.RestoreContent(root.SerializeContent());
  page::HeaderOf(left_h.data())->page_num = left_page;
  uint64_t sep = left.SplitInto(&right);
  if (root.IsLeaf()) {
    page::HeaderOf(left_h.data())->next_page = right_page;
    page::HeaderOf(right_h.data())->prev_page = left_page;
  }

  // The root becomes an internal node over {left, right}.
  uint16_t new_level = root.level() + 1;
  BTreeNode fresh_root(root_handle->data());
  PageNum root_page = page::HeaderOf(root_handle->data())->page_num;
  fresh_root.Init(root_page, store_, new_level);
  fresh_root.set_leftmost_child(left_page);
  fresh_root.InsertSorted(sep, right_page);

  // Log all three new images (redo-only structure change).
  for (auto* h : {&left_h, &right_h, root_handle}) {
    BTreeNode n(h->data());
    log::LogRecord rec;
    rec.type = log::LogRecordType::kBtreeSetContent;
    rec.page = page::HeaderOf(h->data())->page_num;
    rec.store = store_;
    rec.after = n.SerializeContent();
    // Persist the leaf chain via the page header fields.
    rec.slot = 0;
    SHOREMT_RETURN_NOT_OK(LogAndMark(txn, h, std::move(rec)));
  }
  return Status::Ok();
}

Status BTree::SplitChild(txn::Transaction* txn, PageHandle* parent_handle,
                         PageHandle* child_handle, uint64_t key) {
  stats_.splits.fetch_add(1, std::memory_order_relaxed);
  BTreeNode parent(parent_handle->data());
  BTreeNode child(child_handle->data());
  PageNum right_page;
  SHOREMT_ASSIGN_OR_RETURN(PageHandle right_h, NewNode(txn, child.level(),
                                                       &right_page));
  BTreeNode right(right_h.data());
  uint64_t sep = child.SplitInto(&right);
  PageNum child_page = page::HeaderOf(child_handle->data())->page_num;
  if (child.IsLeaf()) {
    // Chain: child -> right -> old successor.
    auto* ch = page::HeaderOf(child_handle->data());
    auto* rh = page::HeaderOf(right_h.data());
    rh->next_page = ch->next_page;
    rh->prev_page = child_page;
    ch->next_page = right_page;
  }
  for (auto* h : {child_handle, &right_h}) {
    BTreeNode n(h->data());
    log::LogRecord rec;
    rec.type = log::LogRecordType::kBtreeSetContent;
    rec.page = page::HeaderOf(h->data())->page_num;
    rec.store = store_;
    rec.after = n.SerializeContent();
    SHOREMT_RETURN_NOT_OK(LogAndMark(txn, h, std::move(rec)));
  }
  // Publish the separator in the parent (guaranteed non-full).
  parent.InsertSorted(sep, right_page);
  log::LogRecord prec;
  prec.type = log::LogRecordType::kBtreeInsert;
  prec.page = page::HeaderOf(parent_handle->data())->page_num;
  prec.store = store_;
  prec.after.resize(sizeof(BTreeEntry));
  BTreeEntry pe{sep, right_page};
  std::memcpy(prec.after.data(), &pe, sizeof(pe));
  SHOREMT_RETURN_NOT_OK(LogAndMark(txn, parent_handle, std::move(prec)));

  // Continue the descent into whichever half now covers `key`.
  if (key >= sep) {
    *child_handle = std::move(right_h);
  }
  return Status::Ok();
}

Result<PageHandle> BTree::InsertUnlogged(uint64_t key, uint64_t value,
                                         PageNum* leaf_page) {
  SHOREMT_ASSIGN_OR_RETURN(PageHandle h,
                           pool_->FixPage(root_, LatchMode::kExclusive));
  {
    BTreeNode root(h.data());
    // Structure changes during undo are logged redo-only with no txn.
    if (root.IsFull()) SHOREMT_RETURN_NOT_OK(SplitRoot(nullptr, &h));
  }
  for (;;) {
    BTreeNode node(h.data());
    if (node.IsLeaf()) {
      if (!node.InsertSorted(key, value)) {
        return Status::AlreadyExists("duplicate key");
      }
      *leaf_page = page::HeaderOf(h.data())->page_num;
      return std::move(h);
    }
    PageNum child_page = node.ChildFor(key);
    SHOREMT_ASSIGN_OR_RETURN(
        PageHandle child_h, pool_->FixPage(child_page, LatchMode::kExclusive));
    {
      BTreeNode child(child_h.data());
      if (child.IsFull()) {
        SHOREMT_RETURN_NOT_OK(SplitChild(nullptr, &h, &child_h, key));
      }
    }
    h = std::move(child_h);  // Crab: release parent, keep child.
  }
}

Result<PageHandle> BTree::RemoveUnlogged(uint64_t key, uint64_t* removed,
                                         PageNum* leaf_page) {
  SHOREMT_ASSIGN_OR_RETURN(PageHandle h,
                           pool_->FixPage(root_, LatchMode::kExclusive));
  for (;;) {
    BTreeNode node(h.data());
    if (node.IsLeaf()) {
      uint16_t i;
      if (!node.FindKey(key, &i)) return Status::NotFound("key not found");
      *removed = node.entry(i).value;
      node.RemoveKey(key);
      *leaf_page = page::HeaderOf(h.data())->page_num;
      return std::move(h);
    }
    SHOREMT_ASSIGN_OR_RETURN(
        PageHandle child_h,
        pool_->FixPage(node.ChildFor(key), LatchMode::kExclusive));
    h = std::move(child_h);
  }
}

Status BTree::Insert(txn::Transaction* txn, uint64_t key, RecordId rid) {
  stats_.inserts.fetch_add(1, std::memory_order_relaxed);
  SHOREMT_ASSIGN_OR_RETURN(PageHandle h,
                           pool_->FixPage(root_, LatchMode::kExclusive));
  {
    BTreeNode root(h.data());
    if (root.IsFull()) SHOREMT_RETURN_NOT_OK(SplitRoot(txn, &h));
  }
  for (;;) {
    BTreeNode node(h.data());
    if (node.IsLeaf()) {
      if (!node.InsertSorted(key, PackRecordId(rid))) {
        return Status::AlreadyExists("duplicate key");
      }
      log::LogRecord rec;
      rec.type = log::LogRecordType::kBtreeInsert;
      rec.page = page::HeaderOf(h.data())->page_num;
      rec.store = store_;
      rec.after.resize(sizeof(BTreeEntry));
      BTreeEntry e{key, PackRecordId(rid)};
      std::memcpy(rec.after.data(), &e, sizeof(e));
      return LogAndMark(txn, &h, std::move(rec));
    }
    PageNum child_page = node.ChildFor(key);
    SHOREMT_ASSIGN_OR_RETURN(
        PageHandle child_h, pool_->FixPage(child_page, LatchMode::kExclusive));
    {
      BTreeNode child(child_h.data());
      if (child.IsFull()) {
        SHOREMT_RETURN_NOT_OK(SplitChild(txn, &h, &child_h, key));
      }
    }
    h = std::move(child_h);  // Crab: release parent, keep child.
  }
}

Result<RecordId> BTree::Find(txn::Transaction* txn, uint64_t key) {
  // Per-worker counters only on this path: a shared RMW per probe is the
  // §7 coherence collapse in miniature (see BTreeStats).
  obs::TlsInc(obs::Metric::kBtreeFinds);
  if (options_.probe_lock_table && txn != nullptr) {
    // §7.7's redundant per-probe check. The shared-table search this knob
    // used to emulate is gone for good: the transaction's private lock
    // cache answers the same question with a handle-local map lookup, so
    // even with the knob on, no latch and no shared cache line is touched.
    (void)txn->locks.HeldMode(lock::LockId::Store(store_));
    obs::TlsInc(obs::Metric::kBtreeProbeLockSearches);
  }
  if (options_.optimistic_reads) {
    for (int r = 0; r <= options_.optimistic_restart_limit; ++r) {
      Result<RecordId> res = TryFindOptimistic(key);
      if (res.ok() || !res.status().IsBusy()) {
        obs::TlsInc(obs::Metric::kBtreeOptimisticDescents);
        return res;
      }
      obs::TlsInc(obs::Metric::kBtreeRestarts);
    }
    // Conflict storm: guarantee progress with the latched crab.
    obs::TlsInc(obs::Metric::kBtreeLatchFallbacks);
  }
  return FindLatched(key);
}

Result<RecordId> BTree::TryFindOptimistic(uint64_t key) {
  SHOREMT_ASSIGN_OR_RETURN(buffer::OptimisticPageHandle h,
                           pool_->FixOptimistic(root_));
  for (;;) {
    uint16_t count, level;
    OptReadHeader(h.data(), &count, &level);
    if (level == 0) {
      uint64_t value = 0;
      bool found = OptFindLeaf(h.data(), count, key, &value);
      // NotFound is an answer too — it is only trusted validated.
      if (!h.Validate()) return Status::Busy("optimistic restart");
      if (!found) return Status::NotFound("key not found");
      return UnpackRecordId(value);
    }
    PageNum child = OptChildFor(h.data(), count, key);
    // Validate BEFORE fixing the child: a torn pointer must never reach
    // the buffer pool (its miss path would read garbage off the volume).
    if (!h.Validate()) return Status::Busy("optimistic restart");
    SHOREMT_ASSIGN_OR_RETURN(buffer::OptimisticPageHandle child_h,
                             pool_->FixOptimistic(child));
    // Optimistic lock coupling: re-check the parent after the child's
    // stamp is recorded — proves the pointer was still current at that
    // instant, so the parent can now be released (dropped) safely.
    if (!h.Validate()) return Status::Busy("optimistic restart");
    h = child_h;
  }
}

Result<RecordId> BTree::FindLatched(uint64_t key) {
  SHOREMT_ASSIGN_OR_RETURN(PageHandle h,
                           pool_->FixPage(root_, LatchMode::kShared));
  for (;;) {
    BTreeNode node(h.data());
    if (node.IsLeaf()) {
      uint16_t i;
      if (!node.FindKey(key, &i)) return Status::NotFound("key not found");
      return UnpackRecordId(node.entry(i).value);
    }
    PageNum child_page = node.ChildFor(key);
    SHOREMT_ASSIGN_OR_RETURN(PageHandle child_h,
                             pool_->FixPage(child_page, LatchMode::kShared));
    h = std::move(child_h);
  }
}

Status BTree::Remove(txn::Transaction* txn, uint64_t key) {
  stats_.removes.fetch_add(1, std::memory_order_relaxed);
  SHOREMT_ASSIGN_OR_RETURN(PageHandle h,
                           pool_->FixPage(root_, LatchMode::kExclusive));
  for (;;) {
    BTreeNode node(h.data());
    if (node.IsLeaf()) {
      uint16_t i;
      if (!node.FindKey(key, &i)) return Status::NotFound("key not found");
      BTreeEntry removed = node.entry(i);
      node.RemoveKey(key);
      log::LogRecord rec;
      rec.type = log::LogRecordType::kBtreeDelete;
      rec.page = page::HeaderOf(h.data())->page_num;
      rec.store = store_;
      rec.before.resize(sizeof(BTreeEntry));
      std::memcpy(rec.before.data(), &removed, sizeof(removed));
      return LogAndMark(txn, &h, std::move(rec));
    }
    PageNum child_page = node.ChildFor(key);
    SHOREMT_ASSIGN_OR_RETURN(
        PageHandle child_h, pool_->FixPage(child_page, LatchMode::kExclusive));
    h = std::move(child_h);  // No merging: every node is delete-safe.
  }
}

Status BTree::Iterator::Seek(uint64_t key) {
  const BTreeOptions& opt = tree_->options_;
  if (opt.optimistic_reads) {
    for (int r = 0; r <= opt.optimistic_restart_limit; ++r) {
      Status st = TrySeekOptimistic(key);
      if (!st.IsBusy()) {
        if (st.ok()) obs::TlsInc(obs::Metric::kBtreeOptimisticDescents);
        return st;
      }
      obs::TlsInc(obs::Metric::kBtreeRestarts);
    }
    obs::TlsInc(obs::Metric::kBtreeLatchFallbacks);
  }
  return SeekLatched(key);
}

Status BTree::Iterator::TrySeekOptimistic(uint64_t key) {
  valid_ = false;
  buf_.clear();
  pos_ = 0;
  SHOREMT_ASSIGN_OR_RETURN(buffer::OptimisticPageHandle h,
                           tree_->pool_->FixOptimistic(tree_->root_));
  for (;;) {
    uint16_t count, level;
    OptReadHeader(h.data(), &count, &level);
    if (level == 0) {
      // Buffer the qualifying tail from the live image; trust it (and the
      // chain pointer) only once the leaf validates. A Busy restart clears
      // the buffer at re-entry, so torn copies never escape.
      OptCopyTail(h.data(), count, 0, key, /*exclusive=*/false, &buf_);
      PageNum next = OptNextPage(h.data());
      if (!h.Validate()) return Status::Busy("optimistic restart");
      next_leaf_ = next;
      ++refills_;  // New snapshot generation (readahead triggers off this).
      if (!buf_.empty()) {
        valid_ = true;
        return Status::Ok();
      }
      return Refill(key, /*exclusive=*/false);
    }
    PageNum child = OptChildFor(h.data(), count, key);
    if (!h.Validate()) return Status::Busy("optimistic restart");
    SHOREMT_ASSIGN_OR_RETURN(buffer::OptimisticPageHandle child_h,
                             tree_->pool_->FixOptimistic(child));
    if (!h.Validate()) return Status::Busy("optimistic restart");
    h = child_h;
  }
}

Status BTree::Iterator::SeekLatched(uint64_t key) {
  valid_ = false;
  buf_.clear();
  pos_ = 0;
  SHOREMT_ASSIGN_OR_RETURN(
      PageHandle h, tree_->pool_->FixPage(tree_->root_, LatchMode::kShared));
  // Descend to the leaf covering `key`, crabbing shared latches.
  for (;;) {
    BTreeNode node(h.data());
    if (node.IsLeaf()) break;
    SHOREMT_ASSIGN_OR_RETURN(
        PageHandle child_h,
        tree_->pool_->FixPage(node.ChildFor(key), LatchMode::kShared));
    h = std::move(child_h);
  }
  // Buffer this leaf's qualifying tail, then drop the latch. Entries whose
  // leaf fills up later simply migrate right in the chain — Refill's
  // resume filter keeps the iteration exactly-once.
  BTreeNode leaf(h.data());
  for (uint16_t i = leaf.LowerBound(key); i < leaf.count(); ++i) {
    buf_.push_back(leaf.entry(i));
  }
  next_leaf_ = page::HeaderOf(h.data())->next_page;
  ++refills_;  // New snapshot generation (readahead triggers off this).
  h.Unfix();  // Release the latch before the chain walk below.
  if (!buf_.empty()) {
    valid_ = true;
    return Status::Ok();
  }
  return RefillLatched(key, /*exclusive=*/false);
}

Status BTree::Iterator::Refill(uint64_t min_key, bool exclusive) {
  const BTreeOptions& opt = tree_->options_;
  if (opt.optimistic_reads) {
    for (int r = 0; r <= opt.optimistic_restart_limit; ++r) {
      Status st = TryRefillOptimistic(min_key, exclusive);
      if (!st.IsBusy()) return st;
      obs::TlsInc(obs::Metric::kBtreeRestarts);
    }
    obs::TlsInc(obs::Metric::kBtreeLatchFallbacks);
  }
  return RefillLatched(min_key, exclusive);
}

Status BTree::Iterator::TryRefillOptimistic(uint64_t min_key,
                                            bool exclusive) {
  valid_ = false;
  buf_.clear();
  pos_ = 0;
  // next_leaf_ only advances past VALIDATED leaves, so a Busy restart
  // resumes exactly at the leaf whose snapshot conflicted — the resume
  // filter then keeps the iteration exactly-once, as in the latched walk.
  while (next_leaf_ != kInvalidPageNum) {
    SHOREMT_ASSIGN_OR_RETURN(buffer::OptimisticPageHandle h,
                             tree_->pool_->FixOptimistic(next_leaf_));
    buf_.clear();
    uint16_t count, level;
    OptReadHeader(h.data(), &count, &level);
    OptCopyTail(h.data(), count, 0, min_key, exclusive, &buf_);
    PageNum next = OptNextPage(h.data());
    if (!h.Validate()) return Status::Busy("optimistic restart");
    next_leaf_ = next;
    ++refills_;  // New snapshot generation (readahead triggers off this).
    if (!buf_.empty()) {
      valid_ = true;
      return Status::Ok();
    }
  }
  return Status::Ok();
}

Status BTree::Iterator::RefillLatched(uint64_t min_key, bool exclusive) {
  // Invalidate up front: an error return (e.g. a failed page fix) must
  // not leave a Valid() iterator pointing at an empty buffer.
  valid_ = false;
  buf_.clear();
  pos_ = 0;
  while (next_leaf_ != kInvalidPageNum) {
    SHOREMT_ASSIGN_OR_RETURN(
        PageHandle h, tree_->pool_->FixPage(next_leaf_, LatchMode::kShared));
    BTreeNode leaf(h.data());
    for (uint16_t i = 0; i < leaf.count(); ++i) {
      const BTreeEntry& e = leaf.entry(i);
      if (exclusive ? e.key > min_key : e.key >= min_key) {
        buf_.push_back(e);
      }
    }
    next_leaf_ = page::HeaderOf(h.data())->next_page;
    ++refills_;  // New snapshot generation (readahead triggers off this).
    if (!buf_.empty()) {
      valid_ = true;
      return Status::Ok();
    }
  }
  valid_ = false;
  return Status::Ok();
}

Status BTree::Iterator::Next() {
  if (!valid_) return Status::InvalidArgument("Next on invalid iterator");
  if (++pos_ < buf_.size()) return Status::Ok();
  return Refill(buf_.back().key, /*exclusive=*/true);
}

Status BTree::Scan(uint64_t lo, uint64_t hi,
                   const std::function<bool(uint64_t, RecordId)>& fn) {
  Iterator it(this);
  SHOREMT_RETURN_NOT_OK(it.Seek(lo));
  while (it.Valid() && it.key() <= hi) {
    if (!fn(it.key(), it.record())) return Status::Ok();
    SHOREMT_RETURN_NOT_OK(it.Next());
  }
  return Status::Ok();
}

Result<uint64_t> BTree::CountEntries() {
  uint64_t n = 0;
  SHOREMT_RETURN_NOT_OK(Scan(0, UINT64_MAX, [&](uint64_t, RecordId) {
    ++n;
    return true;
  }));
  return n;
}

}  // namespace shoremt::btree
