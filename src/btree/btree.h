#ifndef SHOREMT_BTREE_BTREE_H_
#define SHOREMT_BTREE_BTREE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "btree/btree_node.h"
#include "buffer/buffer_pool.h"
#include "common/status.h"
#include "common/types.h"
#include "log/log_manager.h"
#include "space/space_manager.h"
#include "txn/txn_manager.h"

namespace shoremt::btree {

/// B+Tree behaviour knobs.
struct BTreeOptions {
  /// The "unnecessary search of the lock table initiated by B+Tree
  /// probes" that §7.7 removed: every probe performs a redundant
  /// held-mode check. Since the lock-cache redesign the check reads the
  /// transaction's private TxnLockList (a handle-local map lookup) — the
  /// shared-table walk it used to emulate no longer exists anywhere.
  /// Off in the final stage.
  bool probe_lock_table = false;

  /// Optimistic lock coupling: Find and Iterator::Seek/Refill descend
  /// without taking any latch, stamping each node's HybridLatch version
  /// and validating it after the reads (restart from the root on any
  /// conflict). Off = the classic shared-latch crab.
  bool optimistic_reads = true;
  /// Validation failures tolerated per operation before the descent falls
  /// back to the latched path — guarantees progress under pathological
  /// write storms (a restart storm otherwise livelocks readers).
  int optimistic_restart_limit = 8;
};

/// Structure-modification counters. Writer-side only: per-probe read
/// counters (finds, probe checks, restarts) live in the per-worker
/// obs::WorkerCounters block — a shared RMW on the latch-free read path
/// would reintroduce exactly the coherence traffic this design removes.
struct BTreeStats {
  std::atomic<uint64_t> inserts{0};
  std::atomic<uint64_t> removes{0};
  std::atomic<uint64_t> splits{0};
};

/// Latch-coupled B+Tree over buffer pool pages (§2.2: "a robust
/// implementation of B+Tree indexes"). Uniquely-keyed; 64-bit keys; values
/// are RecordIds. The root page number is fixed for the tree's lifetime
/// (root splits push contents down), so no catalog update can race a
/// traversal.
///
/// Concurrency: reads crab with shared latches; writers crab with
/// exclusive latches and split full children preemptively on the way down,
/// so a safe parent is always held when a child must split. Structure
/// modifications are logged redo-only (never undone); entry inserts and
/// deletes are logged physiologically and are undoable.
class BTree {
 public:
  BTree(buffer::BufferPool* pool, space::SpaceManager* space,
        log::LogManager* log, txn::TxnManager* txns, StoreId store,
        PageNum root, BTreeOptions options);

  /// Allocates and formats a root leaf for a new tree (logged under
  /// `txn`); returns the root page number.
  static Result<PageNum> CreateRoot(buffer::BufferPool* pool,
                                    space::SpaceManager* space,
                                    log::LogManager* log,
                                    txn::TxnManager* txns,
                                    txn::Transaction* txn, StoreId store);

  /// Pull-style scanner over the leaf chain. Latches are held only inside
  /// Seek/Next: each refill copies one leaf's qualifying entries under a
  /// shared latch, then releases it, so callers may acquire row locks (or
  /// block) between entries without latch-lock deadlock risk. Because
  /// nodes are never deallocated or merged, the stored next-leaf pointer
  /// stays valid across concurrent splits; entries that a split moved
  /// rightward past the current position are filtered by resume key, so an
  /// iterator observes each key at most once and never misses a key that
  /// existed for the whole scan.
  ///
  ///   BTree::Iterator it(index);
  ///   for (auto st = it.Seek(lo); it.Valid() && it.key() <= hi;
  ///        st = it.Next()) { use(it.key(), it.record()); }
  class Iterator {
   public:
    explicit Iterator(BTree* tree) : tree_(tree) {}

    /// Positions at the first entry with key >= `key`. Invalidates on
    /// error or when no such entry exists.
    Status Seek(uint64_t key);
    /// Advances to the next entry; invalidates at the end of the tree.
    Status Next();
    bool Valid() const { return valid_; }

    /// Entry accessors; only meaningful while Valid().
    uint64_t key() const { return buf_[pos_].key; }
    uint64_t value() const { return buf_[pos_].value; }
    RecordId record() const { return UnpackRecordId(buf_[pos_].value); }

    /// Readahead hooks. `refills()` is a generation counter bumped every
    /// time the buffered leaf snapshot is replaced (Seek and each Refill):
    /// a cursor prefetches once per generation instead of once per row.
    /// `remaining()` is the not-yet-consumed tail of the snapshot (the
    /// entries whose heap pages a scan will touch next); `next_leaf()` is
    /// the chain pointer the next Refill will follow.
    uint64_t refills() const { return refills_; }
    std::span<const BTreeEntry> remaining() const {
      return {buf_.data() + pos_, buf_.size() - pos_};
    }
    PageNum next_leaf() const { return next_leaf_; }

   private:
    /// Walks the leaf chain from `next_leaf_` until a leaf yields entries
    /// with key >= `min_key` (`exclusive`: key > `min_key` — the resume
    /// filter used after the first leaf), buffering them. Dispatches to
    /// the optimistic walk (with latched fallback) or straight to the
    /// latched walk per BTreeOptions.
    Status Refill(uint64_t min_key, bool exclusive);
    /// One optimistic chain walk; Busy = a validation failed, the caller
    /// restarts (next_leaf_ only advances past validated leaves, so a
    /// restart resumes at the leaf that conflicted).
    Status TryRefillOptimistic(uint64_t min_key, bool exclusive);
    Status RefillLatched(uint64_t min_key, bool exclusive);
    /// One optimistic root-to-leaf descent + buffered copy; Busy = restart.
    Status TrySeekOptimistic(uint64_t key);
    Status SeekLatched(uint64_t key);

    BTree* tree_;
    std::vector<BTreeEntry> buf_;  ///< Snapshot of one leaf's tail.
    size_t pos_ = 0;
    PageNum next_leaf_ = kInvalidPageNum;
    uint64_t refills_ = 0;
    bool valid_ = false;
  };

  /// Inserts key→rid; AlreadyExists on duplicate key.
  Status Insert(txn::Transaction* txn, uint64_t key, RecordId rid);
  /// Point lookup; NotFound if absent. `txn` may be null (latch-only read).
  Result<RecordId> Find(txn::Transaction* txn, uint64_t key);
  /// Deletes `key`; NotFound if absent.
  Status Remove(txn::Transaction* txn, uint64_t key);
  /// In-order scan over [lo, hi]; `fn` returns false to stop early.
  Status Scan(uint64_t lo, uint64_t hi,
              const std::function<bool(uint64_t, RecordId)>& fn);

  /// Logical-undo hooks: perform the structural work of an insert/remove
  /// but do NOT log the leaf entry change — the caller logs a CLR carrying
  /// the inverse action and stamps the returned handle. Splits triggered
  /// on the way down are still logged (redo-only) as usual.
  Result<buffer::PageHandle> InsertUnlogged(uint64_t key, uint64_t value,
                                            PageNum* leaf_page);
  Result<buffer::PageHandle> RemoveUnlogged(uint64_t key, uint64_t* removed,
                                            PageNum* leaf_page);
  /// Total number of entries (full scan; diagnostics).
  Result<uint64_t> CountEntries();

  PageNum root() const { return root_; }
  StoreId store() const { return store_; }
  const BTreeStats& stats() const { return stats_; }

 private:
  /// One latch-free root-to-leaf probe under the optimistic protocol.
  /// Ok/NotFound are validated answers; Busy means a version check failed
  /// and the caller should restart (or fall back to latches).
  Result<RecordId> TryFindOptimistic(uint64_t key);
  /// The classic shared-latch crab (also the optimistic fallback path).
  Result<RecordId> FindLatched(uint64_t key);
  /// Appends `rec` (txn-chained when txn != null) and stamps `handle`.
  Status LogAndMark(txn::Transaction* txn, buffer::PageHandle* handle,
                    log::LogRecord rec);
  /// Splits `child` (full, EX-latched) under `parent` (EX-latched, not
  /// full). On return *child_handle refers to the node covering `key`.
  Status SplitChild(txn::Transaction* txn, buffer::PageHandle* parent_handle,
                    buffer::PageHandle* child_handle, uint64_t key);
  /// Splits a full root in place (contents pushed into two new children).
  Status SplitRoot(txn::Transaction* txn, buffer::PageHandle* root_handle);
  /// Allocates + formats a new node page (logged); returns its handle.
  Result<buffer::PageHandle> NewNode(txn::Transaction* txn, uint16_t level,
                                     PageNum* page_out);

  buffer::BufferPool* pool_;
  space::SpaceManager* space_;
  log::LogManager* log_;
  txn::TxnManager* txns_;
  StoreId store_;
  PageNum root_;
  BTreeOptions options_;
  BTreeStats stats_;
};

}  // namespace shoremt::btree

#endif  // SHOREMT_BTREE_BTREE_H_
