#include "btree/btree_node.h"

#include <algorithm>

namespace shoremt::btree {

void BTreeNode::Init(PageNum page_num, StoreId store, uint16_t level) {
  page::FormatPage(data_, page_num, store,
                   level == 0 ? page::PageType::kBTreeLeaf
                              : page::PageType::kBTreeInternal);
  NodeHeader* h = node_header();
  h->count = 0;
  h->level = level;
  h->pad = 0;
  h->leftmost_child = kInvalidPageNum;
}

uint16_t BTreeNode::LowerBound(uint64_t key) const {
  const BTreeEntry* begin = entries();
  const BTreeEntry* end = begin + count();
  const BTreeEntry* it = std::lower_bound(
      begin, end, key,
      [](const BTreeEntry& e, uint64_t k) { return e.key < k; });
  return static_cast<uint16_t>(it - begin);
}

bool BTreeNode::FindKey(uint64_t key, uint16_t* index) const {
  uint16_t i = LowerBound(key);
  if (i < count() && entry(i).key == key) {
    *index = i;
    return true;
  }
  return false;
}

PageNum BTreeNode::ChildFor(uint64_t key) const {
  uint16_t i = LowerBound(key);
  // entry(i).key >= key: if equal, descend into entry(i); else entry(i-1).
  if (i < count() && entry(i).key == key) return entry(i).value;
  if (i == 0) return leftmost_child();
  return entry(i - 1).value;
}

bool BTreeNode::InsertSorted(uint64_t key, uint64_t value) {
  if (IsFull()) return false;
  uint16_t i = LowerBound(key);
  if (i < count() && entry(i).key == key) return false;  // Duplicate.
  BTreeEntry* e = entries();
  std::memmove(e + i + 1, e + i, (count() - i) * sizeof(BTreeEntry));
  e[i] = {key, value};
  ++node_header()->count;
  return true;
}

bool BTreeNode::RemoveKey(uint64_t key) {
  uint16_t i;
  if (!FindKey(key, &i)) return false;
  BTreeEntry* e = entries();
  std::memmove(e + i, e + i + 1, (count() - i - 1) * sizeof(BTreeEntry));
  --node_header()->count;
  return true;
}

bool BTreeNode::UpdateValue(uint64_t key, uint64_t value) {
  uint16_t i;
  if (!FindKey(key, &i)) return false;
  entries()[i].value = value;
  return true;
}

std::vector<uint8_t> BTreeNode::SerializeContent() const {
  // Leaf-chain links live in the PageHeader but are part of the node's
  // logical content (redo of a split must restore them), so the blob is
  // {next_page, prev_page, NodeHeader, entries}.
  size_t len = sizeof(NodeHeader) + count() * sizeof(BTreeEntry);
  const uint8_t* start = data_ + sizeof(page::PageHeader);
  std::vector<uint8_t> out(2 * sizeof(PageNum) + len);
  const page::PageHeader* ph = page::HeaderOf(data_);
  std::memcpy(out.data(), &ph->next_page, sizeof(PageNum));
  std::memcpy(out.data() + sizeof(PageNum), &ph->prev_page, sizeof(PageNum));
  std::memcpy(out.data() + 2 * sizeof(PageNum), start, len);
  return out;
}

void BTreeNode::RestoreContent(std::span<const uint8_t> blob) {
  page::PageHeader* ph = page::HeaderOf(data_);
  std::memcpy(&ph->next_page, blob.data(), sizeof(PageNum));
  std::memcpy(&ph->prev_page, blob.data() + sizeof(PageNum), sizeof(PageNum));
  std::memcpy(data_ + sizeof(page::PageHeader),
              blob.data() + 2 * sizeof(PageNum),
              blob.size() - 2 * sizeof(PageNum));
}

uint64_t BTreeNode::SplitInto(BTreeNode* right) {
  uint16_t total = count();
  uint16_t keep = total / 2;
  uint16_t move = total - keep;
  NodeHeader* rh = right->node_header();
  rh->level = node_header()->level;
  std::memcpy(right->entries(), entries() + keep, move * sizeof(BTreeEntry));
  rh->count = move;
  node_header()->count = keep;
  if (level() > 0) {
    // Internal split: the first moved entry's key becomes the separator;
    // its child becomes the right node's leftmost pointer.
    uint64_t sep = right->entry(0).key;
    rh->leftmost_child = right->entry(0).value;
    std::memmove(right->entries(), right->entries() + 1,
                 (move - 1) * sizeof(BTreeEntry));
    --rh->count;
    return sep;
  }
  return right->entry(0).key;
}

}  // namespace shoremt::btree
