#ifndef SHOREMT_BTREE_BTREE_NODE_H_
#define SHOREMT_BTREE_BTREE_NODE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/types.h"
#include "page/page.h"

namespace shoremt::btree {

/// Fixed-size B+Tree entry. Keys are 64-bit (composite application keys
/// are packed into one word, as is common in research prototypes); values
/// are RecordIds in leaves and child PageNums in internal nodes.
struct BTreeEntry {
  uint64_t key;
  uint64_t value;
};

inline uint64_t PackRecordId(RecordId rid) {
  return (rid.page << 16) | rid.slot;
}
inline RecordId UnpackRecordId(uint64_t v) {
  return RecordId{v >> 16, static_cast<uint16_t>(v & 0xffff)};
}

/// Accessor over a B+Tree node page image. Layout after the PageHeader:
///   NodeHeader { count, level, leftmost_child }
///   BTreeEntry[count]  (sorted by key, dense)
/// Internal-node semantics: keys < entry[0].key descend to leftmost_child;
/// keys in [entry[i].key, entry[i+1].key) descend to entry[i].value.
/// Not synchronized: callers hold the page latch.
class BTreeNode {
 public:
  struct NodeHeader {
    uint16_t count;
    uint16_t level;  ///< 0 = leaf.
    uint32_t pad;
    PageNum leftmost_child;
  };
  static_assert(sizeof(NodeHeader) == 16);

  static constexpr size_t kMaxEntries =
      (kPageSize - sizeof(page::PageHeader) - sizeof(NodeHeader)) /
      sizeof(BTreeEntry);

  explicit BTreeNode(void* data) : data_(static_cast<uint8_t*>(data)) {}

  /// Formats the image as an empty node.
  void Init(PageNum page_num, StoreId store, uint16_t level);

  bool IsLeaf() const { return node_header()->level == 0; }
  uint16_t level() const { return node_header()->level; }
  uint16_t count() const { return node_header()->count; }
  bool IsFull() const { return count() >= kMaxEntries; }
  PageNum leftmost_child() const { return node_header()->leftmost_child; }
  void set_leftmost_child(PageNum p) { node_header()->leftmost_child = p; }

  const BTreeEntry& entry(uint16_t i) const { return entries()[i]; }

  /// Index of the first entry with key >= `key` (== count() if none).
  uint16_t LowerBound(uint64_t key) const;
  /// True + index when `key` is present.
  bool FindKey(uint64_t key, uint16_t* index) const;
  /// Child page for `key` (internal nodes).
  PageNum ChildFor(uint64_t key) const;

  /// Inserts keeping sort order; fails (returns false) when full or key
  /// already present.
  bool InsertSorted(uint64_t key, uint64_t value);
  /// Removes `key`; false if absent.
  bool RemoveKey(uint64_t key);
  /// Replaces the value of an existing key; false if absent.
  bool UpdateValue(uint64_t key, uint64_t value);

  /// Serializes the node payload (NodeHeader + entries) — the redo blob
  /// for kBtreeSetContent records.
  std::vector<uint8_t> SerializeContent() const;
  /// Restores a node payload produced by SerializeContent.
  void RestoreContent(std::span<const uint8_t> blob);

  /// Moves the upper half of this node's entries into `right` (freshly
  /// initialized, same level) and returns the first key of `right`.
  uint64_t SplitInto(BTreeNode* right);

 private:
  NodeHeader* node_header() {
    return reinterpret_cast<NodeHeader*>(data_ + sizeof(page::PageHeader));
  }
  const NodeHeader* node_header() const {
    return reinterpret_cast<const NodeHeader*>(data_ +
                                               sizeof(page::PageHeader));
  }
  BTreeEntry* entries() {
    return reinterpret_cast<BTreeEntry*>(data_ + sizeof(page::PageHeader) +
                                         sizeof(NodeHeader));
  }
  const BTreeEntry* entries() const {
    return reinterpret_cast<const BTreeEntry*>(
        data_ + sizeof(page::PageHeader) + sizeof(NodeHeader));
  }

  uint8_t* data_;
};

}  // namespace shoremt::btree

#endif  // SHOREMT_BTREE_BTREE_NODE_H_
