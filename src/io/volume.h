#ifndef SHOREMT_IO_VOLUME_H_
#define SHOREMT_IO_VOLUME_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace shoremt::io {

class FaultInjector;

/// Per-volume I/O accounting. `reads`/`writes` count device calls (a
/// vectored call is one); `pages_read`/`pages_written` count pages, so
/// their difference against the call counts is the coalescing win;
/// `batched_reads`/`batched_writes` count the calls that carried more
/// than one page.
struct IoStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> read_ns{0};
  std::atomic<uint64_t> write_ns{0};
  std::atomic<uint64_t> pages_read{0};
  std::atomic<uint64_t> pages_written{0};
  std::atomic<uint64_t> batched_reads{0};
  std::atomic<uint64_t> batched_writes{0};
  /// Transient-error retries against this volume and the total backoff
  /// time they spent sleeping (io::RetryTransient policy).
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> retry_backoff_ns{0};
};

/// Device latency model. The paper's testbed put data on a disk array and
/// the log on an in-memory filesystem; benches inject latency here to move
/// I/O on or off the critical path. Latency is charged per device CALL,
/// not per page — which is exactly why vectored multi-page operations win.
struct VolumeOptions {
  uint64_t read_latency_ns = 0;
  uint64_t write_latency_ns = 0;
  /// File-backed volumes only: open with O_DIRECT (page cache bypassed,
  /// buffers must be block-aligned — the buffer pool's arena is). Falls
  /// back to buffered I/O where the filesystem rejects O_DIRECT (tmpfs);
  /// FileVolume::direct_io_active() reports what actually stuck.
  bool direct_io = false;
};

/// Page-granularity block device. Thread safe: concurrent reads/writes to
/// distinct pages proceed in parallel; the buffer pool guarantees a page is
/// never concurrently read and written.
class Volume {
 public:
  virtual ~Volume() = default;

  /// Reads page `page` into `out` (kPageSize bytes).
  virtual Status ReadPage(PageNum page, void* out) = 0;
  /// Writes kPageSize bytes from `data` to page `page`.
  virtual Status WritePage(PageNum page, const void* data) = 0;

  /// Vectored read: pages [first, first+n) into the n scattered buffers
  /// of `bufs` — ONE device call (one latency charge), the primitive the
  /// io::IoScheduler coalesces adjacent-page runs into. The default
  /// implementations loop the single-page ops; MemVolume and FileVolume
  /// override with one real device call.
  virtual Status ReadPagesV(PageNum first, uint8_t* const* bufs, size_t n);
  /// Vectored write of pages [first, first+n) from n scattered buffers.
  virtual Status WritePagesV(PageNum first, const uint8_t* const* bufs,
                             size_t n);

  /// Current size in pages.
  virtual PageNum NumPages() const = 0;
  /// Grows the volume to at least `pages` pages (zero-filled).
  virtual Status Extend(PageNum pages) = 0;

  const IoStats& stats() const { return stats_; }

  /// Counts one transient-error retry (and the backoff slept before it)
  /// against this volume. Public: the retry loops live in the scheduler
  /// and buffer pool, not in the volume.
  void CountRetry(uint64_t backoff_ns) {
    stats_.retries.fetch_add(1, std::memory_order_relaxed);
    stats_.retry_backoff_ns.fetch_add(backoff_ns, std::memory_order_relaxed);
  }

  /// Installs (or clears, with nullptr) a fault injector consulted on
  /// every read/write. The injector must outlive its installation.
  void set_fault_injector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }
  FaultInjector* fault_injector() const {
    return injector_.load(std::memory_order_acquire);
  }

 protected:
  void CountRead(uint64_t ns, uint64_t pages = 1) {
    stats_.reads.fetch_add(1, std::memory_order_relaxed);
    stats_.read_ns.fetch_add(ns, std::memory_order_relaxed);
    stats_.pages_read.fetch_add(pages, std::memory_order_relaxed);
    if (pages > 1) {
      stats_.batched_reads.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void CountWrite(uint64_t ns, uint64_t pages = 1) {
    stats_.writes.fetch_add(1, std::memory_order_relaxed);
    stats_.write_ns.fetch_add(ns, std::memory_order_relaxed);
    stats_.pages_written.fetch_add(pages, std::memory_order_relaxed);
    if (pages > 1) {
      stats_.batched_writes.fetch_add(1, std::memory_order_relaxed);
    }
  }

  IoStats stats_;
  std::atomic<FaultInjector*> injector_{nullptr};
};

/// Memory-backed volume: chunked so growth never moves existing pages,
/// letting reads/writes proceed without a lock.
class MemVolume : public Volume {
 public:
  explicit MemVolume(VolumeOptions options = {});

  Status ReadPage(PageNum page, void* out) override;
  Status WritePage(PageNum page, const void* data) override;
  Status ReadPagesV(PageNum first, uint8_t* const* bufs, size_t n) override;
  Status WritePagesV(PageNum first, const uint8_t* const* bufs,
                     size_t n) override;
  PageNum NumPages() const override;
  Status Extend(PageNum pages) override;

 private:
  static constexpr PageNum kPagesPerChunk = 1024;

  uint8_t* PagePtr(PageNum page) const;

  VolumeOptions options_;
  mutable std::mutex growth_mutex_;
  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
  std::atomic<PageNum> num_pages_{0};
};

/// File-backed volume using positional reads/writes (preadv/pwritev for
/// the vectored ops). With VolumeOptions::direct_io the file is opened
/// O_DIRECT when the filesystem supports it; callers' buffers are used
/// in place when block-aligned and bounced through an aligned scratch
/// page otherwise.
class FileVolume : public Volume {
 public:
  /// Opens (creating if needed) the volume file.
  static Result<std::unique_ptr<FileVolume>> Open(const std::string& path,
                                                  VolumeOptions options = {});
  ~FileVolume() override;

  Status ReadPage(PageNum page, void* out) override;
  Status WritePage(PageNum page, const void* data) override;
  Status ReadPagesV(PageNum first, uint8_t* const* bufs, size_t n) override;
  Status WritePagesV(PageNum first, const uint8_t* const* bufs,
                     size_t n) override;
  PageNum NumPages() const override;
  Status Extend(PageNum pages) override;

  /// True when the file is actually open with O_DIRECT (the option was
  /// set AND the filesystem accepted it).
  bool direct_io_active() const { return direct_active_; }

 private:
  FileVolume(int fd, PageNum pages, VolumeOptions options, bool direct)
      : fd_(fd), num_pages_(pages), options_(options), direct_active_(direct) {}

  int fd_;
  std::atomic<PageNum> num_pages_;
  VolumeOptions options_;
  bool direct_active_ = false;
  std::mutex growth_mutex_;
};

}  // namespace shoremt::io

#endif  // SHOREMT_IO_VOLUME_H_
