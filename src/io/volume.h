#ifndef SHOREMT_IO_VOLUME_H_
#define SHOREMT_IO_VOLUME_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace shoremt::io {

/// Per-volume I/O accounting.
struct IoStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> read_ns{0};
  std::atomic<uint64_t> write_ns{0};
};

/// Device latency model. The paper's testbed put data on a disk array and
/// the log on an in-memory filesystem; benches inject latency here to move
/// I/O on or off the critical path.
struct VolumeOptions {
  uint64_t read_latency_ns = 0;
  uint64_t write_latency_ns = 0;
};

/// Page-granularity block device. Thread safe: concurrent reads/writes to
/// distinct pages proceed in parallel; the buffer pool guarantees a page is
/// never concurrently read and written.
class Volume {
 public:
  virtual ~Volume() = default;

  /// Reads page `page` into `out` (kPageSize bytes).
  virtual Status ReadPage(PageNum page, void* out) = 0;
  /// Writes kPageSize bytes from `data` to page `page`.
  virtual Status WritePage(PageNum page, const void* data) = 0;
  /// Current size in pages.
  virtual PageNum NumPages() const = 0;
  /// Grows the volume to at least `pages` pages (zero-filled).
  virtual Status Extend(PageNum pages) = 0;

  const IoStats& stats() const { return stats_; }

 protected:
  void CountRead(uint64_t ns) {
    stats_.reads.fetch_add(1, std::memory_order_relaxed);
    stats_.read_ns.fetch_add(ns, std::memory_order_relaxed);
  }
  void CountWrite(uint64_t ns) {
    stats_.writes.fetch_add(1, std::memory_order_relaxed);
    stats_.write_ns.fetch_add(ns, std::memory_order_relaxed);
  }

  IoStats stats_;
};

/// Memory-backed volume: chunked so growth never moves existing pages,
/// letting reads/writes proceed without a lock.
class MemVolume : public Volume {
 public:
  explicit MemVolume(VolumeOptions options = {});

  Status ReadPage(PageNum page, void* out) override;
  Status WritePage(PageNum page, const void* data) override;
  PageNum NumPages() const override;
  Status Extend(PageNum pages) override;

 private:
  static constexpr PageNum kPagesPerChunk = 1024;

  uint8_t* PagePtr(PageNum page) const;

  VolumeOptions options_;
  mutable std::mutex growth_mutex_;
  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
  std::atomic<PageNum> num_pages_{0};
};

/// File-backed volume using positional reads/writes.
class FileVolume : public Volume {
 public:
  /// Opens (creating if needed) the volume file.
  static Result<std::unique_ptr<FileVolume>> Open(const std::string& path,
                                                  VolumeOptions options = {});
  ~FileVolume() override;

  Status ReadPage(PageNum page, void* out) override;
  Status WritePage(PageNum page, const void* data) override;
  PageNum NumPages() const override;
  Status Extend(PageNum pages) override;

 private:
  FileVolume(int fd, PageNum pages, VolumeOptions options)
      : fd_(fd), num_pages_(pages), options_(options) {}

  int fd_;
  std::atomic<PageNum> num_pages_;
  VolumeOptions options_;
  std::mutex growth_mutex_;
};

}  // namespace shoremt::io

#endif  // SHOREMT_IO_VOLUME_H_
