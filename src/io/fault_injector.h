#ifndef SHOREMT_IO_FAULT_INJECTOR_H_
#define SHOREMT_IO_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"

namespace shoremt::io {

/// Configuration for a FaultInjector. All rates are probabilities in
/// [0, 1] evaluated per operation from the seeded RNG, so a given
/// (seed, operation sequence) pair replays the identical fault schedule.
struct FaultOptions {
  uint64_t seed = 1;

  /// Probability that a page read / page write is selected to fail with
  /// an injected EIO. A selected *page* fails `transient_attempts` times
  /// (tracked per page number) and then succeeds, which is what a
  /// bounded-retry policy must survive; 0 attempts makes the failure
  /// sticky for that page (permanent media error).
  double read_error_rate = 0.0;
  double write_error_rate = 0.0;
  uint32_t transient_attempts = 1;

  /// Probability that a *failing* page write is torn: a sector-aligned
  /// prefix of the page reaches the device before the error surfaces
  /// (the classic partial-write crash signature).
  double torn_write_rate = 0.0;

  /// Probability that a successful page read has one bit flipped in the
  /// returned image (silent media corruption — only a checksum sees it).
  double bit_flip_rate = 0.0;

  /// Probability of an injected latency spike, and its duration.
  double latency_rate = 0.0;
  uint64_t latency_ns = 0;

  /// When a crash point fires during a write/append, also tear that
  /// in-flight operation (persist a random prefix) before the sticky
  /// crashed state begins — crashes and torn writes travel together.
  bool crash_tears_writes = true;

  /// Sector size used for torn-write prefixes.
  size_t sector_bytes = 512;
};

/// A deterministic, seeded fault-injection layer installed into the
/// volumes (page I/O) and the log storage (append path). Two-phase
/// hooks: Pre* decides an operation's fate (error / torn prefix /
/// latency spike) before the device op runs; PostRead mutates a
/// successfully read image (bit flips). Named crash points turn the
/// injector into a dead device: once a crash point fires (or
/// ForceCrash() is called) every subsequent hooked operation fails
/// until Reset(), modelling the window between a power cut and restart.
///
/// Thread safety: all state sits under one mutex. Determinism holds
/// for a deterministic operation order (single-threaded tests); under
/// concurrency the schedule is still seeded but interleaving-dependent.
class FaultInjector {
 public:
  explicit FaultInjector(FaultOptions options);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- volume hooks --------------------------------------------------------

  /// Fate of a page read. Ok = proceed with the device read.
  Status PreRead(PageNum page);
  /// Applied to a successfully read page image (may flip one bit).
  void PostRead(PageNum page, uint8_t* data, size_t len);
  /// Fate of a page write. On a torn write, `*torn_bytes` is set to the
  /// sector-aligned prefix length (< len) the volume must persist before
  /// returning the error; 0 means nothing reaches the device.
  Status PreWrite(PageNum page, size_t len, size_t* torn_bytes);

  // --- log hooks -----------------------------------------------------------

  /// Fate of a log append of `len` bytes; torn semantics as PreWrite.
  Status PreAppend(size_t len, size_t* torn_bytes);

  // --- crash points --------------------------------------------------------

  /// Arms `name` ("volume.read", "volume.write", "log.append"): the
  /// `countdown`-th subsequent hit crashes the injector. Re-arming
  /// replaces any previous countdown for that name.
  void ArmCrashPoint(const std::string& name, uint64_t countdown);
  /// Immediately enters the crashed state.
  void ForceCrash();
  bool crashed() const;
  /// Leaves the crashed state and disarms every crash point; rates,
  /// per-page transient bookkeeping, and the RNG stream are kept so a
  /// schedule stays deterministic across a recover cycle.
  void Reset();

  // --- counters (test assertions) ------------------------------------------

  uint64_t injected_read_errors() const;
  uint64_t injected_write_errors() const;
  uint64_t injected_torn_writes() const;
  uint64_t injected_bit_flips() const;
  uint64_t injected_crashes() const;

 private:
  // xorshift64*; inline so the schedule depends only on seed + call order.
  uint64_t NextU64Locked();
  double NextUnitLocked();  // uniform [0, 1)
  bool CrashPointHitLocked(const char* name);
  void MaybeLatencyLocked();

  mutable std::mutex mutex_;
  FaultOptions options_;
  uint64_t rng_state_;
  bool crashed_ = false;
  // Remaining injected failures per page (transient error bookkeeping).
  std::unordered_map<uint64_t, uint32_t> pending_failures_;
  std::unordered_map<std::string, uint64_t> crash_points_;
  uint64_t read_errors_ = 0;
  uint64_t write_errors_ = 0;
  uint64_t torn_writes_ = 0;
  uint64_t bit_flips_ = 0;
  uint64_t crashes_ = 0;
};

/// Transient-vs-permanent classification for the retry policy: an
/// injected/OS EIO, a busy resource, or a timeout is worth retrying
/// with backoff; corruption and caller errors never are.
inline bool IsTransientIoError(const Status& st) {
  switch (st.code()) {
    case StatusCode::kIOError:
    case StatusCode::kBusy:
    case StatusCode::kTimeout:
      return true;
    default:
      return false;
  }
}

}  // namespace shoremt::io

#endif  // SHOREMT_IO_FAULT_INJECTOR_H_
