#include "io/volume.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/clock.h"

namespace shoremt::io {

namespace {
void InjectLatency(uint64_t ns) {
  if (ns == 0) return;
  if (ns < 50'000) {
    // Short latencies: spin on the clock (sleep granularity is too coarse).
    uint64_t until = NowNanos() + ns;
    while (NowNanos() < until) {
    }
  } else {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  }
}
}  // namespace

MemVolume::MemVolume(VolumeOptions options) : options_(options) {}

uint8_t* MemVolume::PagePtr(PageNum page) const {
  return chunks_[page / kPagesPerChunk].get() +
         (page % kPagesPerChunk) * kPageSize;
}

Status MemVolume::ReadPage(PageNum page, void* out) {
  if (page >= num_pages_.load(std::memory_order_acquire)) {
    return Status::IOError("read past end of volume");
  }
  uint64_t t0 = NowNanos();
  InjectLatency(options_.read_latency_ns);
  std::memcpy(out, PagePtr(page), kPageSize);
  CountRead(NowNanos() - t0);
  return Status::Ok();
}

Status MemVolume::WritePage(PageNum page, const void* data) {
  if (page >= num_pages_.load(std::memory_order_acquire)) {
    return Status::IOError("write past end of volume");
  }
  uint64_t t0 = NowNanos();
  InjectLatency(options_.write_latency_ns);
  std::memcpy(PagePtr(page), data, kPageSize);
  CountWrite(NowNanos() - t0);
  return Status::Ok();
}

PageNum MemVolume::NumPages() const {
  return num_pages_.load(std::memory_order_acquire);
}

Status MemVolume::Extend(PageNum pages) {
  std::lock_guard<std::mutex> guard(growth_mutex_);
  PageNum current = num_pages_.load(std::memory_order_relaxed);
  if (pages <= current) return Status::Ok();
  size_t chunks_needed = (pages + kPagesPerChunk - 1) / kPagesPerChunk;
  while (chunks_.size() < chunks_needed) {
    auto chunk = std::make_unique<uint8_t[]>(kPagesPerChunk * kPageSize);
    std::memset(chunk.get(), 0, kPagesPerChunk * kPageSize);
    chunks_.push_back(std::move(chunk));
  }
  num_pages_.store(pages, std::memory_order_release);
  return Status::Ok();
}

Result<std::unique_ptr<FileVolume>> FileVolume::Open(const std::string& path,
                                                     VolumeOptions options) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError("lseek: " + std::string(std::strerror(errno)));
  }
  auto pages = static_cast<PageNum>(size / kPageSize);
  return std::unique_ptr<FileVolume>(new FileVolume(fd, pages, options));
}

FileVolume::~FileVolume() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileVolume::ReadPage(PageNum page, void* out) {
  if (page >= num_pages_.load(std::memory_order_acquire)) {
    return Status::IOError("read past end of volume");
  }
  uint64_t t0 = NowNanos();
  InjectLatency(options_.read_latency_ns);
  ssize_t n = ::pread(fd_, out, kPageSize,
                      static_cast<off_t>(page * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pread returned " + std::to_string(n));
  }
  CountRead(NowNanos() - t0);
  return Status::Ok();
}

Status FileVolume::WritePage(PageNum page, const void* data) {
  if (page >= num_pages_.load(std::memory_order_acquire)) {
    return Status::IOError("write past end of volume");
  }
  uint64_t t0 = NowNanos();
  InjectLatency(options_.write_latency_ns);
  ssize_t n = ::pwrite(fd_, data, kPageSize,
                       static_cast<off_t>(page * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite returned " + std::to_string(n));
  }
  CountWrite(NowNanos() - t0);
  return Status::Ok();
}

PageNum FileVolume::NumPages() const {
  return num_pages_.load(std::memory_order_acquire);
}

Status FileVolume::Extend(PageNum pages) {
  std::lock_guard<std::mutex> guard(growth_mutex_);
  PageNum current = num_pages_.load(std::memory_order_relaxed);
  if (pages <= current) return Status::Ok();
  if (::ftruncate(fd_, static_cast<off_t>(pages * kPageSize)) != 0) {
    return Status::IOError("ftruncate: " + std::string(std::strerror(errno)));
  }
  num_pages_.store(pages, std::memory_order_release);
  return Status::Ok();
}

}  // namespace shoremt::io
