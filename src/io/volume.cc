#include "io/volume.h"

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/clock.h"
#include "io/fault_injector.h"

namespace shoremt::io {

namespace {

/// O_DIRECT alignment unit: the conservative logical-block-size bound.
/// kPageSize (8 KiB) is a multiple, so file offsets and lengths are always
/// aligned; only caller buffer addresses need checking.
constexpr size_t kDirectAlign = 4096;

bool Aligned(const void* p) {
  return reinterpret_cast<uintptr_t>(p) % kDirectAlign == 0;
}

void InjectLatency(uint64_t ns) {
  if (ns == 0) return;
  if (ns < 50'000) {
    // Short latencies: spin on the clock (sleep granularity is too coarse).
    uint64_t until = NowNanos() + ns;
    while (NowNanos() < until) {
    }
  } else {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  }
}

/// One-page aligned scratch for the O_DIRECT bounce path (per thread: the
/// buffer pool arena is page-aligned so this path is cold).
uint8_t* AlignedScratch() {
  thread_local std::unique_ptr<uint8_t, decltype(&std::free)> scratch(
      static_cast<uint8_t*>(std::aligned_alloc(kDirectAlign, kPageSize)),
      &std::free);
  return scratch.get();
}

}  // namespace

// ------------------------------------------------------------ Volume base --

Status Volume::ReadPagesV(PageNum first, uint8_t* const* bufs, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    SHOREMT_RETURN_NOT_OK(ReadPage(first + i, bufs[i]));
  }
  return Status::Ok();
}

Status Volume::WritePagesV(PageNum first, const uint8_t* const* bufs,
                           size_t n) {
  for (size_t i = 0; i < n; ++i) {
    SHOREMT_RETURN_NOT_OK(WritePage(first + i, bufs[i]));
  }
  return Status::Ok();
}

// -------------------------------------------------------------- MemVolume --

MemVolume::MemVolume(VolumeOptions options) : options_(options) {}

uint8_t* MemVolume::PagePtr(PageNum page) const {
  return chunks_[page / kPagesPerChunk].get() +
         (page % kPagesPerChunk) * kPageSize;
}

Status MemVolume::ReadPage(PageNum page, void* out) {
  if (page >= num_pages_.load(std::memory_order_acquire)) {
    return Status::IOError("read past end of volume");
  }
  FaultInjector* fi = fault_injector();
  if (fi != nullptr) SHOREMT_RETURN_NOT_OK(fi->PreRead(page));
  uint64_t t0 = NowNanos();
  InjectLatency(options_.read_latency_ns);
  std::memcpy(out, PagePtr(page), kPageSize);
  if (fi != nullptr) fi->PostRead(page, static_cast<uint8_t*>(out), kPageSize);
  CountRead(NowNanos() - t0);
  return Status::Ok();
}

Status MemVolume::WritePage(PageNum page, const void* data) {
  if (page >= num_pages_.load(std::memory_order_acquire)) {
    return Status::IOError("write past end of volume");
  }
  if (FaultInjector* fi = fault_injector()) {
    size_t torn = 0;
    Status st = fi->PreWrite(page, kPageSize, &torn);
    if (!st.ok()) {
      // A torn write persists a sector-aligned prefix before the error.
      if (torn > 0) std::memcpy(PagePtr(page), data, torn);
      return st;
    }
  }
  uint64_t t0 = NowNanos();
  InjectLatency(options_.write_latency_ns);
  std::memcpy(PagePtr(page), data, kPageSize);
  CountWrite(NowNanos() - t0);
  return Status::Ok();
}

Status MemVolume::ReadPagesV(PageNum first, uint8_t* const* bufs, size_t n) {
  if (n == 0) return Status::Ok();
  if (first + n > num_pages_.load(std::memory_order_acquire)) {
    return Status::IOError("read past end of volume");
  }
  if (fault_injector() != nullptr) {
    // Page-wise under injection so per-page fault schedules stay exact.
    return Volume::ReadPagesV(first, bufs, n);
  }
  uint64_t t0 = NowNanos();
  InjectLatency(options_.read_latency_ns);  // One charge for the whole run.
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(bufs[i], PagePtr(first + i), kPageSize);
  }
  CountRead(NowNanos() - t0, n);
  return Status::Ok();
}

Status MemVolume::WritePagesV(PageNum first, const uint8_t* const* bufs,
                              size_t n) {
  if (n == 0) return Status::Ok();
  if (first + n > num_pages_.load(std::memory_order_acquire)) {
    return Status::IOError("write past end of volume");
  }
  if (fault_injector() != nullptr) {
    return Volume::WritePagesV(first, bufs, n);
  }
  uint64_t t0 = NowNanos();
  InjectLatency(options_.write_latency_ns);  // One charge for the whole run.
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(PagePtr(first + i), bufs[i], kPageSize);
  }
  CountWrite(NowNanos() - t0, n);
  return Status::Ok();
}

PageNum MemVolume::NumPages() const {
  return num_pages_.load(std::memory_order_acquire);
}

Status MemVolume::Extend(PageNum pages) {
  std::lock_guard<std::mutex> guard(growth_mutex_);
  PageNum current = num_pages_.load(std::memory_order_relaxed);
  if (pages <= current) return Status::Ok();
  size_t chunks_needed = (pages + kPagesPerChunk - 1) / kPagesPerChunk;
  while (chunks_.size() < chunks_needed) {
    auto chunk = std::make_unique<uint8_t[]>(kPagesPerChunk * kPageSize);
    std::memset(chunk.get(), 0, kPagesPerChunk * kPageSize);
    chunks_.push_back(std::move(chunk));
  }
  num_pages_.store(pages, std::memory_order_release);
  return Status::Ok();
}

// ------------------------------------------------------------- FileVolume --

Result<std::unique_ptr<FileVolume>> FileVolume::Open(const std::string& path,
                                                     VolumeOptions options) {
  int flags = O_RDWR | O_CREAT;
  bool direct = false;
  int fd = -1;
  if (options.direct_io) {
    fd = ::open(path.c_str(), flags | O_DIRECT, 0644);
    direct = fd >= 0;
  }
  if (fd < 0) {
    // Either direct I/O was not requested or the filesystem rejected
    // O_DIRECT (tmpfs returns EINVAL): fall back to buffered gracefully.
    fd = ::open(path.c_str(), flags, 0644);
  }
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError("lseek: " + std::string(std::strerror(errno)));
  }
  auto pages = static_cast<PageNum>(size / kPageSize);
  return std::unique_ptr<FileVolume>(
      new FileVolume(fd, pages, options, direct));
}

FileVolume::~FileVolume() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileVolume::ReadPage(PageNum page, void* out) {
  if (page >= num_pages_.load(std::memory_order_acquire)) {
    return Status::IOError("read past end of volume");
  }
  FaultInjector* fi = fault_injector();
  if (fi != nullptr) SHOREMT_RETURN_NOT_OK(fi->PreRead(page));
  uint64_t t0 = NowNanos();
  InjectLatency(options_.read_latency_ns);
  void* dst = out;
  if (direct_active_ && !Aligned(out)) dst = AlignedScratch();
  ssize_t n = ::pread(fd_, dst, kPageSize,
                      static_cast<off_t>(page * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pread returned " + std::to_string(n));
  }
  if (dst != out) std::memcpy(out, dst, kPageSize);
  if (fi != nullptr) fi->PostRead(page, static_cast<uint8_t*>(out), kPageSize);
  CountRead(NowNanos() - t0);
  return Status::Ok();
}

Status FileVolume::WritePage(PageNum page, const void* data) {
  if (page >= num_pages_.load(std::memory_order_acquire)) {
    return Status::IOError("write past end of volume");
  }
  if (FaultInjector* fi = fault_injector()) {
    size_t torn = 0;
    Status st = fi->PreWrite(page, kPageSize, &torn);
    if (!st.ok()) {
      if (torn > 0) {
        (void)!::pwrite(fd_, data, torn, static_cast<off_t>(page * kPageSize));
      }
      return st;
    }
  }
  uint64_t t0 = NowNanos();
  InjectLatency(options_.write_latency_ns);
  const void* src = data;
  if (direct_active_ && !Aligned(data)) {
    std::memcpy(AlignedScratch(), data, kPageSize);
    src = AlignedScratch();
  }
  ssize_t n = ::pwrite(fd_, src, kPageSize,
                       static_cast<off_t>(page * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite returned " + std::to_string(n));
  }
  CountWrite(NowNanos() - t0);
  return Status::Ok();
}

Status FileVolume::ReadPagesV(PageNum first, uint8_t* const* bufs, size_t n) {
  if (n == 0) return Status::Ok();
  if (first + n > num_pages_.load(std::memory_order_acquire)) {
    return Status::IOError("read past end of volume");
  }
  if (fault_injector() != nullptr) {
    return Volume::ReadPagesV(first, bufs, n);
  }
  if (direct_active_) {
    for (size_t i = 0; i < n; ++i) {
      // O_DIRECT demands every iov_base aligned; bounce page-wise if not.
      if (!Aligned(bufs[i])) return Volume::ReadPagesV(first, bufs, n);
    }
  }
  uint64_t t0 = NowNanos();
  InjectLatency(options_.read_latency_ns);
  std::vector<iovec> iov(n);
  for (size_t i = 0; i < n; ++i) {
    iov[i] = {bufs[i], kPageSize};
  }
  off_t off = static_cast<off_t>(first * kPageSize);
  size_t done = 0;
  size_t iov_at = 0;
  // preadv may return short on signals or near EOF; resume at the boundary
  // (offsets are always page-aligned because runs never straddle a page).
  while (done < n * kPageSize) {
    ssize_t got = ::preadv(fd_, iov.data() + iov_at,
                           static_cast<int>(n - iov_at), off);
    if (got <= 0) {
      return Status::IOError("preadv returned " + std::to_string(got));
    }
    done += static_cast<size_t>(got);
    if (done % kPageSize != 0) {
      return Status::IOError("preadv split a page");
    }
    iov_at = done / kPageSize;
    off = static_cast<off_t>((first + iov_at) * kPageSize);
  }
  CountRead(NowNanos() - t0, n);
  return Status::Ok();
}

Status FileVolume::WritePagesV(PageNum first, const uint8_t* const* bufs,
                               size_t n) {
  if (n == 0) return Status::Ok();
  if (first + n > num_pages_.load(std::memory_order_acquire)) {
    return Status::IOError("write past end of volume");
  }
  if (fault_injector() != nullptr) {
    return Volume::WritePagesV(first, bufs, n);
  }
  if (direct_active_) {
    for (size_t i = 0; i < n; ++i) {
      if (!Aligned(bufs[i])) return Volume::WritePagesV(first, bufs, n);
    }
  }
  uint64_t t0 = NowNanos();
  InjectLatency(options_.write_latency_ns);
  std::vector<iovec> iov(n);
  for (size_t i = 0; i < n; ++i) {
    iov[i] = {const_cast<uint8_t*>(bufs[i]), kPageSize};
  }
  off_t off = static_cast<off_t>(first * kPageSize);
  size_t done = 0;
  size_t iov_at = 0;
  while (done < n * kPageSize) {
    ssize_t put = ::pwritev(fd_, iov.data() + iov_at,
                            static_cast<int>(n - iov_at), off);
    if (put <= 0) {
      return Status::IOError("pwritev returned " + std::to_string(put));
    }
    done += static_cast<size_t>(put);
    if (done % kPageSize != 0) {
      return Status::IOError("pwritev split a page");
    }
    iov_at = done / kPageSize;
    off = static_cast<off_t>((first + iov_at) * kPageSize);
  }
  CountWrite(NowNanos() - t0, n);
  return Status::Ok();
}

PageNum FileVolume::NumPages() const {
  return num_pages_.load(std::memory_order_acquire);
}

Status FileVolume::Extend(PageNum pages) {
  std::lock_guard<std::mutex> guard(growth_mutex_);
  PageNum current = num_pages_.load(std::memory_order_relaxed);
  if (pages <= current) return Status::Ok();
  if (::ftruncate(fd_, static_cast<off_t>(pages * kPageSize)) != 0) {
    return Status::IOError("ftruncate: " + std::string(std::strerror(errno)));
  }
  num_pages_.store(pages, std::memory_order_release);
  return Status::Ok();
}

}  // namespace shoremt::io
