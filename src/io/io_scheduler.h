#ifndef SHOREMT_IO_IO_SCHEDULER_H_
#define SHOREMT_IO_IO_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "io/volume.h"

namespace shoremt::io {

/// Tuning for the async I/O spine. Sizes are page-granularity requests;
/// a coalesced run occupies one slot per member page.
struct IoSchedulerOptions {
  /// Device threads executing coalesced vectored calls. The scheduler is
  /// what turns the Volume's synchronous interface into an asynchronous
  /// one, so at least one worker always runs.
  uint32_t workers = 2;
  /// Fixed request pool shared by every ring: acquiring a slot when all
  /// are in flight blocks (global backpressure).
  uint32_t slots = 256;
  /// Max in-flight requests per ring — the ring's bounded window. Submit
  /// blocks until completions open the window (per-client backpressure).
  uint32_t ring_window = 64;
  /// Coalescing cap: adjacent-page runs longer than this are split into
  /// multiple device calls.
  uint32_t max_run_pages = 16;
  /// Transient-error retry budget per device run (io::RetryPolicy):
  /// workers re-execute a failed run up to `max_retries` times with
  /// doubling backoff before the error goes sticky to the requests.
  uint32_t max_retries = 4;
  uint64_t retry_initial_backoff_ns = 100'000;
  uint64_t retry_max_backoff_ns = 10'000'000;
};

struct IoSchedulerStats {
  std::atomic<uint64_t> submitted{0};           ///< Page requests accepted.
  std::atomic<uint64_t> completed{0};           ///< Page requests finished.
  std::atomic<uint64_t> device_calls{0};        ///< Coalesced runs executed.
  std::atomic<uint64_t> batched_calls{0};       ///< Runs carrying > 1 page.
  std::atomic<uint64_t> coalesced_pages{0};     ///< Pages beyond each run's first.
  std::atomic<uint64_t> backpressure_waits{0};  ///< Blocked slot/window acquisitions.
  std::atomic<uint64_t> errors{0};              ///< Requests completed with !ok.
  std::atomic<uint64_t> retries{0};             ///< Transient-error re-executions.
  std::atomic<uint64_t> retry_backoff_ns{0};    ///< Backoff time slept by workers.
};

enum class IoOpKind : uint8_t { kRead, kWrite };

/// Completion callback: runs ON THE I/O WORKER THREAD, immediately after
/// the device call, once per page request with that request's own status.
/// It must not block and must not submit more I/O; it may release latches
/// and pins (the pool's primitives are plain atomics) and poke cvs — the
/// buffer pool's prefetch install and the cleaner's dirty-clear both ride
/// here, which is what lets a waiter in the miss path make progress
/// without the submitting thread ever polling.
using IoCallback = std::function<void(PageNum, Status)>;

class IoScheduler;

/// A client's submission/completion ring. NOT thread-safe: one ring per
/// submitting thread (each cleaner daemon owns one; benches own one per
/// worker). Queue* stages page requests locally; Submit() coalesces
/// adjacent-page runs, applies the bounded-window backpressure and hands
/// the runs to the scheduler's workers; Poll()/Drain() harvest. Errors are
/// sticky per REQUEST (each callback sees its own run's status; one failed
/// run never poisons the rest of the batch) and the ring keeps the first
/// error for Drain() to surface.
///
/// A ring must be destroyed before its scheduler; destruction drains.
class IoRing {
 public:
  ~IoRing();

  IoRing(const IoRing&) = delete;
  IoRing& operator=(const IoRing&) = delete;

  /// Stages one page read into `buf` (kPageSize bytes, caller-owned until
  /// the request completes).
  void QueueRead(PageNum page, void* buf, IoCallback cb = {});
  /// Stages one page write from `buf` (stable until completion).
  void QueueWrite(PageNum page, const void* buf, IoCallback cb = {});

  /// Coalesces the staged requests into adjacent-page runs (in staging
  /// order — sort before staging when ordering helps, as the cleaner
  /// does) and submits them. Blocks while the in-flight window is full.
  /// Returns the number of device runs formed.
  size_t Submit();

  /// Non-blocking harvest: number of requests completed since the last
  /// Poll/Drain (their callbacks have already run on the worker).
  size_t Poll();

  /// Blocks until every in-flight request of this ring has completed,
  /// then returns the sticky first error (Ok if none) and clears it.
  Status Drain();

  size_t in_flight() const;

 private:
  friend class IoScheduler;
  explicit IoRing(IoScheduler* scheduler) : scheduler_(scheduler) {}

  struct Staged {
    IoOpKind kind;
    PageNum page;
    void* buf;  ///< Const-cast for writes; kind disambiguates.
    IoCallback cb;
  };

  IoScheduler* scheduler_;
  std::vector<Staged> staged_;

  /// Completion side, written by I/O workers.
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  size_t in_flight_ = 0;
  size_t completed_since_poll_ = 0;
  Status sticky_error_ = Status::Ok();
};

/// The async batched I/O spine: a fixed-slot request pool, a run queue
/// and a small crew of device threads over one Volume. Clients submit
/// through per-client IoRings (or fire-and-forget via TrySubmitDetached);
/// workers execute each run as ONE vectored Volume call and complete the
/// member requests via their callbacks.
///
/// Destruction executes everything already queued, then stops the
/// workers — in-flight teardown is safe as long as request buffers
/// outlive the scheduler (the buffer pool destroys its scheduler before
/// the frame arena for exactly this reason).
class IoScheduler {
 public:
  explicit IoScheduler(Volume* volume, IoSchedulerOptions options = {});
  ~IoScheduler();

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  /// A new ring bound to this scheduler (destroy it before the scheduler).
  std::unique_ptr<IoRing> CreateRing();

  /// Detached one-page submission: no ring, no harvest — the slot is
  /// recycled right after the callback runs on the worker. Returns Busy
  /// (nothing submitted) when no slot is free: detached consumers
  /// (prefetch) shed load instead of blocking.
  Status TrySubmitDetached(IoOpKind kind, PageNum page, void* buf,
                           IoCallback cb);

  const IoSchedulerStats& stats() const { return stats_; }
  const IoSchedulerOptions& options() const { return options_; }
  Volume* volume() { return volume_; }

 private:
  friend class IoRing;

  struct Slot {
    IoOpKind kind = IoOpKind::kRead;
    PageNum page = kInvalidPageNum;
    void* buf = nullptr;
    IoCallback cb;
    IoRing* ring = nullptr;  ///< Null for detached requests.
  };

  /// One coalesced device call: slots_[ids] cover pages
  /// [first, first + ids.size()) in order, all the same kind.
  struct Run {
    PageNum first = kInvalidPageNum;
    IoOpKind kind = IoOpKind::kRead;
    std::vector<uint32_t> ids;
  };

  uint32_t AcquireSlot();  ///< Blocks until a slot frees (backpressure).
  int TryAcquireSlot();    ///< -1 when none free.
  void ReleaseSlot(uint32_t id);
  void EnqueueRun(Run run);
  void WorkerLoop();
  void ExecuteRun(const Run& run);

  Volume* volume_;
  IoSchedulerOptions options_;
  IoSchedulerStats stats_;

  std::vector<Slot> slots_;
  std::mutex pool_mutex_;
  std::condition_variable pool_cv_;
  std::vector<uint32_t> free_slots_;  ///< Guarded by pool_mutex_.

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Run> queue_;  ///< Guarded by queue_mutex_.
  bool stop_ = false;      ///< Guarded by queue_mutex_.

  std::vector<std::thread> workers_;
};

}  // namespace shoremt::io

#endif  // SHOREMT_IO_IO_SCHEDULER_H_
