#ifndef SHOREMT_IO_RETRY_H_
#define SHOREMT_IO_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/status.h"
#include "io/fault_injector.h"
#include "io/volume.h"

namespace shoremt::io {

/// Bounded-exponential-backoff retry policy for transient I/O errors.
/// Shared by every device-call site (scheduler workers, the miss-path
/// synchronous read, eviction write-back) so one knob governs them all.
struct RetryPolicy {
  uint32_t max_retries = 4;
  uint64_t initial_backoff_ns = 100'000;  // 100 µs, doubling per attempt.
  uint64_t max_backoff_ns = 10'000'000;   // 10 ms cap.
};

/// Runs `op` (returning Status); while the result classifies as transient
/// (IsTransientIoError) and the budget lasts, sleeps the backoff and
/// retries. Permanent errors (Corruption et al.) return immediately; the
/// error goes sticky only once the budget is exhausted. Retries and the
/// backoff time slept are charged to `volume`'s IoStats (null = uncounted).
template <typename Op>
Status RetryTransient(Volume* volume, const RetryPolicy& policy, Op&& op,
                      uint32_t* retries_out = nullptr) {
  Status st = op();
  uint64_t backoff = policy.initial_backoff_ns;
  uint32_t attempts = 0;
  while (!st.ok() && IsTransientIoError(st) &&
         attempts < policy.max_retries) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
    if (volume != nullptr) volume->CountRetry(backoff);
    ++attempts;
    st = op();
    backoff = std::min<uint64_t>(backoff * 2, policy.max_backoff_ns);
  }
  if (retries_out != nullptr) *retries_out = attempts;
  return st;
}

}  // namespace shoremt::io

#endif  // SHOREMT_IO_RETRY_H_
