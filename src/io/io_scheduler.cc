#include "io/io_scheduler.h"

#include <algorithm>

#include "io/retry.h"

namespace shoremt::io {

// ----------------------------------------------------------------- IoRing --

IoRing::~IoRing() { (void)Drain(); }

void IoRing::QueueRead(PageNum page, void* buf, IoCallback cb) {
  staged_.push_back({IoOpKind::kRead, page, buf, std::move(cb)});
}

void IoRing::QueueWrite(PageNum page, const void* buf, IoCallback cb) {
  staged_.push_back(
      {IoOpKind::kWrite, page, const_cast<void*>(buf), std::move(cb)});
}

size_t IoRing::Submit() {
  const uint32_t max_run = std::max<uint32_t>(
      1, std::min({scheduler_->options_.max_run_pages,
                   scheduler_->options_.ring_window,
                   scheduler_->options_.slots}));
  size_t runs = 0;
  size_t i = 0;
  while (i < staged_.size()) {
    // Coalesce the longest adjacent-page run of one kind (capped so a run
    // always fits the window).
    size_t j = i + 1;
    while (j < staged_.size() && j - i < max_run &&
           staged_[j].kind == staged_[i].kind &&
           staged_[j].page == staged_[i].page + (j - i)) {
      ++j;
    }
    size_t len = j - i;
    // Bounded window: block until this whole run fits among this ring's
    // in-flight requests.
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (in_flight_ + len > scheduler_->options_.ring_window) {
        scheduler_->stats_.backpressure_waits.fetch_add(
            1, std::memory_order_relaxed);
        cv_.wait(lock, [&] {
          return in_flight_ + len <= scheduler_->options_.ring_window;
        });
      }
      in_flight_ += len;
    }
    IoScheduler::Run run;
    run.first = staged_[i].page;
    run.kind = staged_[i].kind;
    run.ids.reserve(len);
    for (size_t k = i; k < j; ++k) {
      uint32_t id = scheduler_->AcquireSlot();
      IoScheduler::Slot& s = scheduler_->slots_[id];
      s.kind = staged_[k].kind;
      s.page = staged_[k].page;
      s.buf = staged_[k].buf;
      s.cb = std::move(staged_[k].cb);
      s.ring = this;
      run.ids.push_back(id);
    }
    scheduler_->stats_.submitted.fetch_add(len, std::memory_order_relaxed);
    scheduler_->EnqueueRun(std::move(run));
    ++runs;
    i = j;
  }
  staged_.clear();
  return runs;
}

size_t IoRing::Poll() {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t done = completed_since_poll_;
  completed_since_poll_ = 0;
  return done;
}

Status IoRing::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return in_flight_ == 0; });
  completed_since_poll_ = 0;
  Status first = sticky_error_;
  sticky_error_ = Status::Ok();
  return first;
}

size_t IoRing::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

// ------------------------------------------------------------ IoScheduler --

IoScheduler::IoScheduler(Volume* volume, IoSchedulerOptions options)
    : volume_(volume), options_(options) {
  options_.workers = std::max<uint32_t>(1, options_.workers);
  options_.slots = std::max<uint32_t>(1, options_.slots);
  options_.ring_window = std::max<uint32_t>(1, options_.ring_window);
  slots_.resize(options_.slots);
  free_slots_.reserve(options_.slots);
  for (uint32_t i = 0; i < options_.slots; ++i) free_slots_.push_back(i);
  workers_.reserve(options_.workers);
  for (uint32_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

IoScheduler::~IoScheduler() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::unique_ptr<IoRing> IoScheduler::CreateRing() {
  return std::unique_ptr<IoRing>(new IoRing(this));
}

Status IoScheduler::TrySubmitDetached(IoOpKind kind, PageNum page, void* buf,
                                      IoCallback cb) {
  int id = TryAcquireSlot();
  if (id < 0) return Status::Busy("io scheduler slots exhausted");
  Slot& s = slots_[static_cast<uint32_t>(id)];
  s.kind = kind;
  s.page = page;
  s.buf = buf;
  s.cb = std::move(cb);
  s.ring = nullptr;
  Run run;
  run.first = page;
  run.kind = kind;
  run.ids.push_back(static_cast<uint32_t>(id));
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  EnqueueRun(std::move(run));
  return Status::Ok();
}

uint32_t IoScheduler::AcquireSlot() {
  std::unique_lock<std::mutex> lock(pool_mutex_);
  if (free_slots_.empty()) {
    stats_.backpressure_waits.fetch_add(1, std::memory_order_relaxed);
    pool_cv_.wait(lock, [&] { return !free_slots_.empty(); });
  }
  uint32_t id = free_slots_.back();
  free_slots_.pop_back();
  return id;
}

int IoScheduler::TryAcquireSlot() {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (free_slots_.empty()) return -1;
  uint32_t id = free_slots_.back();
  free_slots_.pop_back();
  return static_cast<int>(id);
}

void IoScheduler::ReleaseSlot(uint32_t id) {
  slots_[id].cb = nullptr;  // Drop closure state eagerly.
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    free_slots_.push_back(id);
  }
  pool_cv_.notify_one();
}

void IoScheduler::EnqueueRun(Run run) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(run));
  }
  queue_cv_.notify_one();
}

void IoScheduler::WorkerLoop() {
  for (;;) {
    Run run;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      // Drain-before-stop: everything submitted before destruction still
      // executes, so teardown with in-flight requests loses nothing.
      if (queue_.empty()) return;
      run = std::move(queue_.front());
      queue_.pop_front();
    }
    ExecuteRun(run);
  }
}

void IoScheduler::ExecuteRun(const Run& run) {
  const size_t n = run.ids.size();
  // Gather the scattered buffers in page order for one vectored call.
  std::vector<uint8_t*> bufs(n);
  for (size_t i = 0; i < n; ++i) {
    bufs[i] = static_cast<uint8_t*>(slots_[run.ids[i]].buf);
  }
  // Transient device errors (EIO, busy, timeout) are retried here with
  // bounded backoff — retrying the whole run is safe because page reads
  // and writes are idempotent. Only an exhausted budget (or a permanent
  // error like Corruption) reaches the requests' callbacks.
  RetryPolicy policy{options_.max_retries, options_.retry_initial_backoff_ns,
                     options_.retry_max_backoff_ns};
  uint32_t retries = 0;
  Status st = RetryTransient(
      volume_, policy,
      [&] {
        return run.kind == IoOpKind::kRead
                   ? volume_->ReadPagesV(run.first, bufs.data(), n)
                   : volume_->WritePagesV(
                         run.first,
                         const_cast<const uint8_t* const*>(bufs.data()), n);
      },
      &retries);
  if (retries > 0) {
    stats_.retries.fetch_add(retries, std::memory_order_relaxed);
    uint64_t slept = 0;
    uint64_t b = policy.initial_backoff_ns;
    for (uint32_t i = 0; i < retries; ++i) {
      slept += b;
      b = std::min<uint64_t>(b * 2, policy.max_backoff_ns);
    }
    stats_.retry_backoff_ns.fetch_add(slept, std::memory_order_relaxed);
  }
  stats_.device_calls.fetch_add(1, std::memory_order_relaxed);
  if (n > 1) {
    stats_.batched_calls.fetch_add(1, std::memory_order_relaxed);
    stats_.coalesced_pages.fetch_add(n - 1, std::memory_order_relaxed);
  }
  if (!st.ok()) stats_.errors.fetch_add(n, std::memory_order_relaxed);
  // Count completion before delivering it: once the ring below is
  // notified, a Drain()ing observer may read the stats immediately.
  stats_.completed.fetch_add(n, std::memory_order_relaxed);

  // Per-request completion: the run's status applies to each member (a
  // failed run never touches requests in OTHER runs of the same batch —
  // that is the "sticky per request, not per batch" contract).
  IoRing* ring = slots_[run.ids[0]].ring;
  for (uint32_t id : run.ids) {
    Slot& s = slots_[id];
    if (s.cb) s.cb(s.page, st);
    if (s.ring == nullptr) ReleaseSlot(id);
  }
  if (ring != nullptr) {
    // Slots go back to the pool BEFORE the ring learns the run finished,
    // and the cv notify happens under the ring lock: once Drain observes
    // in_flight_ == 0 the ring may be destroyed immediately, so the
    // worker must be completely done with it at that point.
    for (uint32_t id : run.ids) ReleaseSlot(id);
    {
      std::lock_guard<std::mutex> lock(ring->mutex_);
      ring->in_flight_ -= n;
      ring->completed_since_poll_ += n;
      if (!st.ok() && ring->sticky_error_.ok()) ring->sticky_error_ = st;
      ring->cv_.notify_all();
    }
  }
}

}  // namespace shoremt::io
