#include "io/fault_injector.h"

#include <chrono>
#include <thread>

namespace shoremt::io {

FaultInjector::FaultInjector(FaultOptions options)
    : options_(options),
      rng_state_(options.seed ? options.seed : 0x9E3779B97F4A7C15ull) {}

uint64_t FaultInjector::NextU64Locked() {
  // xorshift64* — tiny, seedable, good enough for fault schedules.
  uint64_t x = rng_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state_ = x;
  return x * 0x2545F4914F6CDD1Dull;
}

double FaultInjector::NextUnitLocked() {
  return static_cast<double>(NextU64Locked() >> 11) * 0x1.0p-53;
}

bool FaultInjector::CrashPointHitLocked(const char* name) {
  auto it = crash_points_.find(name);
  if (it == crash_points_.end()) return false;
  if (it->second > 1) {
    --it->second;
    return false;
  }
  crash_points_.erase(it);
  crashed_ = true;
  ++crashes_;
  return true;
}

void FaultInjector::MaybeLatencyLocked() {
  if (options_.latency_rate <= 0.0 || options_.latency_ns == 0) return;
  if (NextUnitLocked() >= options_.latency_rate) return;
  // Sleep with the lock held is fine here: the injector IS the slow
  // device, and serializing spikes keeps the schedule deterministic.
  std::this_thread::sleep_for(std::chrono::nanoseconds(options_.latency_ns));
}

Status FaultInjector::PreRead(PageNum page) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) return Status::IOError("injected crash: device gone");
  if (CrashPointHitLocked("volume.read")) {
    return Status::IOError("injected crash at volume.read");
  }
  MaybeLatencyLocked();
  auto it = pending_failures_.find(page);
  if (it != pending_failures_.end()) {
    if (it->second == 0) {  // Sticky (permanent) failure for this page.
      ++read_errors_;
      return Status::IOError("injected EIO (permanent) reading page " +
                             std::to_string(page));
    }
    if (--it->second == 0) pending_failures_.erase(it);
    ++read_errors_;
    return Status::IOError("injected EIO reading page " +
                           std::to_string(page));
  }
  if (options_.read_error_rate > 0.0 &&
      NextUnitLocked() < options_.read_error_rate) {
    if (options_.transient_attempts > 1) {
      pending_failures_[page] = options_.transient_attempts - 1;
    } else if (options_.transient_attempts == 0) {
      pending_failures_[page] = 0;  // Sticky.
    }
    ++read_errors_;
    return Status::IOError("injected EIO reading page " +
                           std::to_string(page));
  }
  return Status::Ok();
}

void FaultInjector::PostRead(PageNum page, uint8_t* data, size_t len) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (len == 0 || options_.bit_flip_rate <= 0.0) return;
  if (NextUnitLocked() >= options_.bit_flip_rate) return;
  uint64_t r = NextU64Locked();
  data[(r >> 3) % len] ^= static_cast<uint8_t>(1u << (r & 7));
  ++bit_flips_;
  (void)page;
}

Status FaultInjector::PreWrite(PageNum page, size_t len, size_t* torn_bytes) {
  *torn_bytes = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) return Status::IOError("injected crash: device gone");
  if (CrashPointHitLocked("volume.write")) {
    if (options_.crash_tears_writes && len > options_.sector_bytes) {
      size_t sectors = len / options_.sector_bytes;
      *torn_bytes = (NextU64Locked() % sectors) * options_.sector_bytes;
      if (*torn_bytes > 0) ++torn_writes_;
    }
    return Status::IOError("injected crash at volume.write");
  }
  MaybeLatencyLocked();
  auto it = pending_failures_.find(page);
  bool fail = false;
  if (it != pending_failures_.end()) {
    if (it->second == 0) {
      fail = true;  // Sticky.
    } else {
      if (--it->second == 0) pending_failures_.erase(it);
      fail = true;
    }
  } else if (options_.write_error_rate > 0.0 &&
             NextUnitLocked() < options_.write_error_rate) {
    if (options_.transient_attempts > 1) {
      pending_failures_[page] = options_.transient_attempts - 1;
    } else if (options_.transient_attempts == 0) {
      pending_failures_[page] = 0;
    }
    fail = true;
  }
  if (!fail) return Status::Ok();
  ++write_errors_;
  if (options_.torn_write_rate > 0.0 &&
      NextUnitLocked() < options_.torn_write_rate &&
      len > options_.sector_bytes) {
    size_t sectors = len / options_.sector_bytes;
    *torn_bytes = (NextU64Locked() % sectors) * options_.sector_bytes;
    if (*torn_bytes > 0) ++torn_writes_;
  }
  return Status::IOError("injected EIO writing page " + std::to_string(page));
}

Status FaultInjector::PreAppend(size_t len, size_t* torn_bytes) {
  *torn_bytes = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) return Status::IOError("injected crash: device gone");
  if (CrashPointHitLocked("log.append")) {
    if (options_.crash_tears_writes && len > 1) {
      *torn_bytes = NextU64Locked() % len;  // Byte-granular torn log tail.
      if (*torn_bytes > 0) ++torn_writes_;
    }
    return Status::IOError("injected crash at log.append");
  }
  MaybeLatencyLocked();
  return Status::Ok();
}

void FaultInjector::ArmCrashPoint(const std::string& name,
                                  uint64_t countdown) {
  std::lock_guard<std::mutex> lock(mutex_);
  crash_points_[name] = countdown == 0 ? 1 : countdown;
}

void FaultInjector::ForceCrash() {
  std::lock_guard<std::mutex> lock(mutex_);
  crashed_ = true;
  ++crashes_;
}

bool FaultInjector::crashed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  crashed_ = false;
  crash_points_.clear();
}

uint64_t FaultInjector::injected_read_errors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return read_errors_;
}
uint64_t FaultInjector::injected_write_errors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return write_errors_;
}
uint64_t FaultInjector::injected_torn_writes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return torn_writes_;
}
uint64_t FaultInjector::injected_bit_flips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bit_flips_;
}
uint64_t FaultInjector::injected_crashes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashes_;
}

}  // namespace shoremt::io
