/// Log-shipping replication demo: a primary process streams its
/// write-ahead log to a forked replica, the replica serves consistent
/// reads at its replayed-LSN horizon while the stream is live, and when
/// the primary "crashes" (exits without shutdown, one transaction still
/// in flight) the replica PROMOTES — recovery over the received log
/// aborts the in-flight transaction, and the promoted engine serves the
/// full committed prefix read-write as the new primary.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "io/volume.h"
#include "log/log_storage.h"
#include "repl/framing.h"
#include "repl/replica.h"
#include "repl/shipper.h"
#include "sm/session.h"
#include "sm/storage_manager.h"

using namespace shoremt;

namespace {

constexpr uint64_t kCommittedRows = 500;

sm::StorageOptions EngineOptions() {
  sm::StorageOptions o = sm::StorageOptions::ForStage(sm::Stage::kFinal);
  o.log.segment_bytes = 32 * 1024;
  o.buffer.enable_cleaner = false;
  o.checkpoint_daemon = false;
  return o;
}

std::vector<uint8_t> Row(uint64_t key) {
  std::vector<uint8_t> payload(48);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(key * 13 + i);
  }
  return payload;
}

/// The primary: commits kCommittedRows in batches, leaves one transaction
/// hanging (durable but uncommitted), then exits abruptly — from the
/// replica's side the stream just ends mid-conversation.
int RunPrimary(int fd) {
  io::MemVolume volume;
  log::LogStorage wal(0, 32 * 1024);
  auto opened = sm::StorageManager::Open(EngineOptions(), &volume, &wal);
  if (!opened.ok()) return 1;
  auto& db = *opened;

  repl::SegmentShipper shipper(db->log(), fd);
  shipper.Start();

  auto session = db->OpenSession();
  if (!session->Begin().ok() || !session->CreateTable("accounts").ok() ||
      !session->Commit().ok()) {
    return 1;
  }
  auto table = session->OpenTable("accounts");
  if (!table.ok()) return 1;
  for (uint64_t base = 0; base < kCommittedRows; base += 50) {
    if (!session->Begin().ok()) return 1;
    for (uint64_t k = base; k < base + 50; ++k) {
      if (!session->Insert(*table, k, Row(k)).ok()) return 1;
    }
    if (!session->Commit().ok()) return 1;
  }
  std::printf("[primary] committed %llu rows\n",
              (unsigned long long)kCommittedRows);

  // One transaction the crash strands: durable in the log (flushed, so it
  // ships) but never committed — promotion must roll it back.
  if (!session->Begin().ok() ||
      !session->Insert(*table, 777'777, Row(777'777)).ok() ||
      !db->log()->FlushAll().ok()) {
    return 1;
  }
  std::printf("[primary] in-flight insert of key 777777 is durable, "
              "never committed\n");

  // Let the shipper drain the tail, then die without a word.
  uint64_t durable = wal.size();
  while (shipper.shipped_offset() < durable) ::usleep(2000);
  std::printf("[primary] shipped %llu/%llu bytes -- crashing now\n",
              (unsigned long long)shipper.shipped_offset(),
              (unsigned long long)durable);
  std::fflush(stdout);
  db->SimulateCrash();
  shipper.Stop();
  return 0;
}

/// The replica: serves horizon reads while streaming, then survives the
/// primary by promoting.
int RunReplica(int fd) {
  io::MemVolume volume;
  log::LogStorage wal(0, 32 * 1024);
  repl::Replica::Options ro;
  ro.storage = EngineOptions();
  ro.replay_workers = 4;
  repl::Replica replica(&volume, &wal, ro);
  if (!replica.Start(fd).ok()) return 1;

  // Live read at the horizon: wait until SOMETHING committed is visible,
  // then read it through a perfectly ordinary session.
  while (replica.replayed_lsn() < 1000 && !replica.stream_ended()) {
    ::usleep(1000);
  }
  {
    auto s = replica.sm()->OpenSession();
    if (!s->Begin().ok()) return 1;
    auto t = s->OpenTable("accounts");
    if (t.ok() && s->Read(*t, 0).ok()) {
      std::printf("[replica] live horizon read: key 0 visible at "
                  "replayed_lsn=%llu\n",
                  (unsigned long long)replica.replayed_lsn());
    }
    (void)s->Commit();
  }

  replica.WaitStreamEnd(30'000);
  std::printf("[replica] stream ended (primary crashed) after %llu bytes; "
              "promoting...\n",
              (unsigned long long)replica.received_bytes());
  Status st = replica.Promote();
  if (!st.ok()) {
    std::fprintf(stderr, "[replica] promote failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  // The promoted engine: full committed prefix present, the stranded
  // transaction rolled back, and it takes writes — it IS the primary now.
  auto s = replica.sm()->OpenSession();
  if (!s->Begin().ok()) return 1;
  auto t = s->OpenTable("accounts");
  if (!t.ok()) return 1;
  for (uint64_t k = 0; k < kCommittedRows; ++k) {
    if (!s->Read(*t, k).ok()) {
      std::fprintf(stderr, "[replica] committed key %llu missing!\n",
                   (unsigned long long)k);
      return 1;
    }
  }
  bool stranded_gone = !s->Read(*t, 777'777).ok();
  if (!s->Insert(*t, 1'000'000, Row(1'000'000)).ok()) return 1;
  if (!s->Commit().ok()) return 1;
  std::printf("[replica] promoted: %llu committed rows served, stranded "
              "key 777777 %s, new write accepted\n",
              (unsigned long long)kCommittedRows,
              stranded_gone ? "rolled back" : "LEAKED");
  return stranded_gone ? 0 : 1;
}

}  // namespace

int main() {
  std::printf("=== replication demo: stream, crash, promote ===\n");
  std::fflush(stdout);
  int fds[2];
  if (!repl::MakeSocketPair(fds).ok()) return 1;
  pid_t pid = ::fork();
  if (pid < 0) return 1;
  if (pid == 0) {
    ::close(fds[0]);
    int rc = RunReplica(fds[1]);
    ::close(fds[1]);
    std::fflush(nullptr);  // _Exit skips stdio teardown
    std::_Exit(rc);
  }
  ::close(fds[1]);
  int rc = RunPrimary(fds[0]);
  ::close(fds[0]);
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) < 0) return 1;
  int child_rc =
      WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 128 + WTERMSIG(wstatus);
  if (rc == 0 && child_rc == 0) {
    std::printf("takeaway: the committed prefix survived the primary; the "
                "in-flight transaction did not.\nThat asymmetry -- exactly "
                "what a failover must guarantee -- falls out of commit-"
                "gated\nreplay plus ARIES recovery over the shipped log.\n");
  }
  return rc != 0 ? rc : child_rc;
}
