/// Quickstart: open a storage manager, create a table, run transactions.
///
/// Demonstrates the core public API: StorageManager::Open, Begin/Commit/
/// Abort, Insert/Read/Update/Delete/Scan, and what rollback means.

#include <cstdio>
#include <string>

#include "io/volume.h"
#include "log/log_storage.h"
#include "sm/options.h"
#include "sm/storage_manager.h"

using namespace shoremt;

namespace {

std::vector<uint8_t> Row(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

}  // namespace

int main() {
  // Durable state: a volume (the database) and a log device. MemVolume is
  // the in-memory backend; FileVolume works the same way on disk.
  io::MemVolume volume;
  log::LogStorage wal;

  // The options preset picks the fully-optimized Shore-MT configuration;
  // StorageOptions::ForStage(sm::Stage::kBaseline) would give you the
  // original Shore behaviour (every knob is individually settable too).
  auto opened = sm::StorageManager::Open(
      sm::StorageOptions::ForStage(sm::Stage::kFinal), &volume, &wal);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto& db = *opened;

  // DDL + a few inserts in one transaction.
  auto* txn = db->Begin();
  auto table = db->CreateTable(txn, "greetings");
  if (!table.ok()) return 1;
  for (uint64_t key = 1; key <= 5; ++key) {
    auto rid =
        db->Insert(txn, *table, key, Row("hello #" + std::to_string(key)));
    if (!rid.ok()) return 1;
  }
  if (!db->Commit(txn).ok()) return 1;
  std::printf("committed 5 rows into 'greetings'\n");

  // Point read.
  auto* reader = db->Begin();
  auto row = db->Read(reader, *table, 3);
  std::printf("key 3 -> \"%s\"\n",
              std::string(row->begin(), row->end()).c_str());
  (void)db->Commit(reader);

  // Rollback: the update below never happened.
  auto* loser = db->Begin();
  (void)db->Update(loser, *table, 3, Row("tampered"));
  (void)db->Abort(loser);
  auto* check = db->Begin();
  auto after = db->Read(check, *table, 3);
  std::printf("after abort, key 3 -> \"%s\"\n",
              std::string(after->begin(), after->end()).c_str());
  (void)db->Commit(check);

  // Ordered scan.
  auto* scanner = db->Begin();
  std::printf("scan [2,4]: ");
  (void)db->Scan(scanner, *table, 2, 4,
                 [](uint64_t key, std::span<const uint8_t> bytes) {
                   std::printf("%llu=\"%.*s\" ",
                               static_cast<unsigned long long>(key),
                               static_cast<int>(bytes.size()),
                               reinterpret_cast<const char*>(bytes.data()));
                   return true;
                 });
  std::printf("\n");
  (void)db->Commit(scanner);

  // Checkpoint + clean shutdown.
  (void)db->Checkpoint();
  std::printf("done; log wrote %llu bytes\n",
              static_cast<unsigned long long>(wal.size()));
  return 0;
}
