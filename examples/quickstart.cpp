/// Quickstart: open a storage manager, open a session, run transactions.
///
/// Demonstrates the core public API: StorageManager::Open, OpenSession,
/// Begin/Commit/Abort, Insert/Read/Update/Delete, cursor scans, batched
/// Apply, per-session statistics, and what rollback means.

#include <cstdio>
#include <string>

#include "io/volume.h"
#include "log/log_storage.h"
#include "sm/options.h"
#include "sm/session.h"
#include "sm/storage_manager.h"

using namespace shoremt;

namespace {

std::vector<uint8_t> Row(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

}  // namespace

int main() {
  // Durable state: a volume (the database) and a log device. MemVolume is
  // the in-memory backend; FileVolume works the same way on disk.
  io::MemVolume volume;
  log::LogStorage wal;

  // The options preset picks the fully-optimized Shore-MT configuration;
  // StorageOptions::ForStage(sm::Stage::kBaseline) would give you the
  // original Shore behaviour (every knob is individually settable too).
  auto opened = sm::StorageManager::Open(
      sm::StorageOptions::ForStage(sm::Stage::kFinal), &volume, &wal);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto& db = *opened;

  // Every worker thread opens one session; it owns the thread's RNG, read
  // buffer and statistics.
  auto session = db->OpenSession();

  // DDL + a few inserts in one transaction.
  if (!session->Begin().ok()) return 1;
  auto table = session->CreateTable("greetings");
  if (!table.ok()) return 1;
  for (uint64_t key = 1; key <= 5; ++key) {
    auto rid = session->Insert(*table, key, Row("hello #" + std::to_string(key)));
    if (!rid.ok()) return 1;
  }
  if (!session->Commit().ok()) return 1;
  std::printf("committed 5 rows into 'greetings'\n");

  // Point read (the span points into the session's reusable buffer).
  if (!session->Begin().ok()) return 1;
  auto row = session->Read(*table, 3);
  std::printf("key 3 -> \"%.*s\"\n", static_cast<int>(row->size()),
              reinterpret_cast<const char*>(row->data()));
  (void)session->Commit();

  // Rollback: the update below never happened.
  (void)session->Begin();
  (void)session->Update(*table, 3, Row("tampered"));
  (void)session->Abort();
  (void)session->Begin();
  auto after = session->Read(*table, 3);
  std::printf("after abort, key 3 -> \"%.*s\"\n",
              static_cast<int>(after->size()),
              reinterpret_cast<const char*>(after->data()));
  (void)session->Commit();

  // Ordered range scan with a pull-style cursor.
  (void)session->Begin();
  auto cur = session->OpenCursor(*table);
  std::printf("cursor [2,4]: ");
  for (auto st = cur.Seek(2); cur.Valid() && cur.key() <= 4; st = cur.Next()) {
    std::printf("%llu=\"%.*s\" ", static_cast<unsigned long long>(cur.key()),
                static_cast<int>(cur.value().size()),
                reinterpret_cast<const char*>(cur.value().data()));
  }
  std::printf("\n");
  (void)session->Commit();

  // Batched writes: one atomic Apply, one commit, one log flush.
  std::vector<uint8_t> six = Row("hello #6"), seven = Row("hello #7");
  sm::Op batch[] = {
      {sm::OpType::kInsert, 6, six},
      {sm::OpType::kInsert, 7, seven},
      {sm::OpType::kDelete, 1, {}},
  };
  if (!session->Apply(*table, batch).ok()) return 1;
  std::printf("applied a 3-op batch (insert 6, insert 7, delete 1)\n");

  // Checkpoint + statistics + clean shutdown.
  (void)db->Checkpoint();
  session->Harvest();
  sm::SessionStats stats = db->harvested_session_stats();
  std::printf("session did %llu ops (%llu inserts) over %llu commits, "
              "%llu WAL bytes\n",
              static_cast<unsigned long long>(stats.ops()),
              static_cast<unsigned long long>(stats.inserts),
              static_cast<unsigned long long>(stats.commits),
              static_cast<unsigned long long>(stats.log_bytes));
  std::printf("done; log wrote %llu bytes\n",
              static_cast<unsigned long long>(wal.size()));
  return 0;
}
