/// Order-entry example: the TPC-C-style workload the paper benchmarks.
///
/// Loads a small TPC-C database and runs a mixed Payment / New Order
/// workload from several terminals — one sm::Session per terminal thread —
/// then prints per-district order statistics via cursors — the "realistic
/// workload" counterpart to quickstart.cpp.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "io/volume.h"
#include "log/log_storage.h"
#include "sm/options.h"
#include "sm/session.h"
#include "sm/storage_manager.h"
#include "workload/tpcc.h"

using namespace shoremt;
using namespace shoremt::workload;

int main() {
  io::MemVolume volume;
  log::LogStorage wal;
  auto opened = sm::StorageManager::Open(
      sm::StorageOptions::ForStage(sm::Stage::kFinal), &volume, &wal);
  if (!opened.ok()) return 1;
  auto& db = *opened;

  TpccConfig cfg;
  cfg.warehouses = 2;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 60;
  cfg.items = 200;
  auto loader = db->OpenSession();
  auto loaded = LoadTpcc(loader.get(), cfg);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  TpccDatabase tpcc = *loaded;
  std::printf("loaded %u warehouses, %u districts, %u items\n",
              cfg.warehouses, cfg.warehouses * cfg.districts_per_warehouse,
              cfg.items);

  // 4 terminals, 88%-of-TPC-C mix: roughly half Payment, half New Order
  // (the paper benchmarks them separately; an app mixes them).
  constexpr int kTerminals = 4;
  constexpr int kTxnsPerTerminal = 100;
  std::atomic<int> payments{0}, new_orders{0}, aborts{0};
  std::vector<std::thread> terminals;
  for (int t = 0; t < kTerminals; ++t) {
    terminals.emplace_back([&, t] {
      auto session = db->OpenSession();
      uint32_t home_w = 1 + t % cfg.warehouses;
      for (int i = 0; i < kTxnsPerTerminal; ++i) {
        if (session->rng().Bernoulli(0.5)) {
          if (RunPayment(session.get(), &tpcc, home_w)) {
            payments.fetch_add(1);
          } else {
            aborts.fetch_add(1);
          }
        } else {
          if (RunNewOrder(session.get(), &tpcc, home_w)) {
            new_orders.fetch_add(1);
          } else {
            aborts.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : terminals) t.join();
  std::printf("committed: %d payments, %d new orders (%d deadlock aborts)\n",
              payments.load(), new_orders.load(), aborts.load());
  sm::SessionStats stats = db->harvested_session_stats();
  std::printf("terminals: %llu row ops, %llu lock waits, %llu log bytes\n",
              static_cast<unsigned long long>(stats.ops()),
              static_cast<unsigned long long>(stats.lock_waits),
              static_cast<unsigned long long>(stats.log_bytes));

  // Report: orders per district and total warehouse revenue.
  auto report = db->OpenSession();
  if (!report->Begin().ok()) return 1;
  for (uint32_t w = 1; w <= cfg.warehouses; ++w) {
    auto wr = ReadTpccRow<WarehouseRow>(report.get(), tpcc.warehouse,
                                        WarehouseKey(w));
    if (!wr.ok()) return 1;
    std::printf("warehouse %u: payment ytd = %.2f\n", w, wr->ytd);
    for (uint32_t d = 1; d <= cfg.districts_per_warehouse; ++d) {
      auto dr = ReadTpccRow<DistrictRow>(report.get(), tpcc.district,
                                         DistrictKey(w, d));
      if (!dr.ok()) return 1;
      uint64_t lines = 0;
      auto cur = report->OpenCursor(tpcc.order_line);
      for (auto st = cur.Seek(OrderLineKey(w, d, 0, 0));
           cur.Valid() && cur.key() <= OrderLineKey(w, d, 9999999, 15);
           st = cur.Next()) {
        ++lines;
      }
      std::printf("  district %u: %u orders, %llu order lines\n", d,
                  dr->next_o_id - 1, static_cast<unsigned long long>(lines));
    }
  }
  (void)report->Commit();
  return 0;
}
