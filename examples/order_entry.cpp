/// Order-entry example: the TPC-C-style workload the paper benchmarks.
///
/// Loads a small TPC-C database and runs a mixed Payment / New Order
/// workload from several terminals, then prints per-district order
/// statistics — the "realistic workload" counterpart to quickstart.cpp.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/random.h"
#include "io/volume.h"
#include "log/log_storage.h"
#include "sm/options.h"
#include "sm/storage_manager.h"
#include "workload/tpcc.h"

using namespace shoremt;
using namespace shoremt::workload;

int main() {
  io::MemVolume volume;
  log::LogStorage wal;
  auto opened = sm::StorageManager::Open(
      sm::StorageOptions::ForStage(sm::Stage::kFinal), &volume, &wal);
  if (!opened.ok()) return 1;
  auto& db = *opened;

  TpccConfig cfg;
  cfg.warehouses = 2;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 60;
  cfg.items = 200;
  auto loaded = LoadTpcc(db.get(), cfg);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  TpccDatabase tpcc = *loaded;
  std::printf("loaded %u warehouses, %u districts, %u items\n",
              cfg.warehouses, cfg.warehouses * cfg.districts_per_warehouse,
              cfg.items);

  // 4 terminals, 88%-of-TPC-C mix: roughly half Payment, half New Order
  // (the paper benchmarks them separately; an app mixes them).
  constexpr int kTerminals = 4;
  constexpr int kTxnsPerTerminal = 100;
  std::atomic<int> payments{0}, new_orders{0}, aborts{0};
  std::vector<std::thread> terminals;
  for (int t = 0; t < kTerminals; ++t) {
    terminals.emplace_back([&, t] {
      Rng rng(42 + t);
      uint32_t home_w = 1 + t % cfg.warehouses;
      for (int i = 0; i < kTxnsPerTerminal; ++i) {
        if (rng.Bernoulli(0.5)) {
          if (RunPayment(db.get(), &tpcc, home_w, rng)) {
            payments.fetch_add(1);
          } else {
            aborts.fetch_add(1);
          }
        } else {
          if (RunNewOrder(db.get(), &tpcc, home_w, rng)) {
            new_orders.fetch_add(1);
          } else {
            aborts.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : terminals) t.join();
  std::printf("committed: %d payments, %d new orders (%d deadlock aborts)\n",
              payments.load(), new_orders.load(), aborts.load());

  // Report: orders per district and total warehouse revenue.
  auto* report = db->Begin();
  for (uint32_t w = 1; w <= cfg.warehouses; ++w) {
    auto row = db->Read(report, tpcc.warehouse, WarehouseKey(w));
    WarehouseRow wr;
    std::memcpy(&wr, row->data(), sizeof(wr));
    std::printf("warehouse %u: payment ytd = %.2f\n", w, wr.ytd);
    for (uint32_t d = 1; d <= cfg.districts_per_warehouse; ++d) {
      auto drow = db->Read(report, tpcc.district, DistrictKey(w, d));
      DistrictRow dr;
      std::memcpy(&dr, drow->data(), sizeof(dr));
      uint64_t lines = 0;
      (void)db->Scan(report, tpcc.order_line, OrderLineKey(w, d, 0, 0),
                     OrderLineKey(w, d, 9999999, 15),
                     [&](uint64_t, std::span<const uint8_t>) {
                       ++lines;
                       return true;
                     });
      std::printf("  district %u: %u orders, %llu order lines\n", d,
                  dr.next_o_id - 1, static_cast<unsigned long long>(lines));
    }
  }
  (void)db->Commit(report);
  return 0;
}
