/// Banking OLTP example: concurrent money transfers with strict 2PL.
///
/// A classic short-transaction workload on the session API: N teller
/// threads — one sm::Session each — move money between accounts; deadlock
/// victims retry. At the end the total balance must be exactly what we
/// started with — demonstrating isolation + atomicity under real
/// concurrency, plus a crash-recovery epilogue showing durability. The
/// harvested session statistics show where the contention went.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "io/volume.h"
#include "log/log_storage.h"
#include "sm/options.h"
#include "sm/session.h"
#include "sm/storage_manager.h"

using namespace shoremt;

namespace {

constexpr int kAccounts = 200;
constexpr int kTellers = 4;
constexpr int kTransfersPerTeller = 300;
constexpr int64_t kInitialBalance = 1000;

std::span<const uint8_t> BalanceBytes(const int64_t& v) {
  return {reinterpret_cast<const uint8_t*>(&v), sizeof(v)};
}

int64_t ToBalance(std::span<const uint8_t> bytes) {
  int64_t v;
  std::memcpy(&v, bytes.data(), sizeof(v));
  return v;
}

/// Sums every account with a cursor under one transaction.
int64_t AuditTotal(sm::Session* session, const sm::TableInfo& accounts) {
  int64_t total = 0;
  (void)session->Begin();
  auto cur = session->OpenCursor(accounts);
  for (auto st = cur.Seek(0); cur.Valid(); st = cur.Next()) {
    total += ToBalance(cur.value());
  }
  (void)session->Commit();
  return total;
}

}  // namespace

int main() {
  io::MemVolume volume;
  log::LogStorage wal;
  sm::TableInfo accounts;
  constexpr int64_t kExpected = int64_t{kAccounts} * kInitialBalance;

  {
    auto opened = sm::StorageManager::Open(
        sm::StorageOptions::ForStage(sm::Stage::kFinal), &volume, &wal);
    if (!opened.ok()) return 1;
    auto& db = *opened;

    auto setup = db->OpenSession();
    if (!setup->Begin().ok()) return 1;
    auto table = setup->CreateTable("accounts");
    if (!table.ok()) return 1;
    accounts = *table;
    for (uint64_t acct = 1; acct <= kAccounts; ++acct) {
      if (!setup->Insert(accounts, acct, BalanceBytes(kInitialBalance)).ok()) {
        return 1;
      }
    }
    if (!setup->Commit().ok()) return 1;
    std::printf("opened %d accounts with %lld each\n", kAccounts,
                static_cast<long long>(kInitialBalance));

    std::atomic<int> commits{0};
    std::atomic<int> retries{0};
    std::vector<std::thread> tellers;
    for (int t = 0; t < kTellers; ++t) {
      tellers.emplace_back([&] {
        // One session per teller thread; its RNG drives the workload.
        auto session = db->OpenSession();
        for (int i = 0; i < kTransfersPerTeller; ++i) {
          uint64_t from = 1 + session->rng().Uniform(kAccounts);
          uint64_t to = 1 + session->rng().Uniform(kAccounts);
          if (from == to) continue;
          int64_t amount =
              1 + static_cast<int64_t>(session->rng().Uniform(50));
          for (;;) {  // Retry deadlock victims.
            (void)session->Begin();
            auto src = session->Read(accounts, from);
            int64_t s = src.ok() ? ToBalance(*src) - amount : 0;
            auto dst = session->Read(accounts, to);
            int64_t d = dst.ok() ? ToBalance(*dst) + amount : 0;
            bool ok = src.ok() && dst.ok() &&
                      session->Update(accounts, from, BalanceBytes(s)).ok() &&
                      session->Update(accounts, to, BalanceBytes(d)).ok();
            if (ok && session->Commit().ok()) {
              commits.fetch_add(1);
              break;
            }
            (void)session->Abort();
            retries.fetch_add(1);
          }
        }
        // Session destructor harvests, but being explicit reads better.
        session->Harvest();
      });
    }
    for (auto& t : tellers) t.join();
    std::printf("transfers committed: %d (deadlock retries: %d)\n",
                commits.load(), retries.load());
    sm::SessionStats stats = db->harvested_session_stats();
    std::printf("teller sessions: %llu ops, %llu lock waits, %llu WAL bytes\n",
                static_cast<unsigned long long>(stats.ops()),
                static_cast<unsigned long long>(stats.lock_waits),
                static_cast<unsigned long long>(stats.log_bytes));

    // Audit: money is conserved.
    auto auditor = db->OpenSession();
    int64_t total = AuditTotal(auditor.get(), accounts);
    std::printf("audit total: %lld (expected %lld) -> %s\n",
                static_cast<long long>(total),
                static_cast<long long>(kExpected),
                total == kExpected ? "OK" : "BROKEN");

    // Simulate a power failure: nothing flushed beyond the WAL.
    db->SimulateCrash();
  }

  // Restart: ARIES recovery replays the committed transfers.
  auto reopened = sm::StorageManager::Open(
      sm::StorageOptions::ForStage(sm::Stage::kFinal), &volume, &wal);
  if (!reopened.ok()) return 1;
  auto& db = *reopened;
  auto session = db->OpenSession();
  auto table = session->OpenTable("accounts");
  if (!table.ok()) return 1;
  int64_t total = AuditTotal(session.get(), *table);
  std::printf("after crash+recovery, audit total: %lld -> %s\n",
              static_cast<long long>(total),
              total == kExpected ? "OK" : "BROKEN");
  return total == kExpected ? 0 : 1;
}
