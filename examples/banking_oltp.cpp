/// Banking OLTP example: concurrent money transfers with strict 2PL.
///
/// A classic short-transaction workload on the public API: N teller
/// threads move money between accounts; deadlock victims retry. At the end
/// the total balance must be exactly what we started with — demonstrating
/// isolation + atomicity under real concurrency, plus a crash-recovery
/// epilogue showing durability.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/random.h"
#include "io/volume.h"
#include "log/log_storage.h"
#include "sm/options.h"
#include "sm/storage_manager.h"

using namespace shoremt;

namespace {

constexpr int kAccounts = 200;
constexpr int kTellers = 4;
constexpr int kTransfersPerTeller = 300;
constexpr int64_t kInitialBalance = 1000;

std::span<const uint8_t> BalanceBytes(const int64_t& v) {
  return {reinterpret_cast<const uint8_t*>(&v), sizeof(v)};
}

int64_t ToBalance(const std::vector<uint8_t>& bytes) {
  int64_t v;
  std::memcpy(&v, bytes.data(), sizeof(v));
  return v;
}

}  // namespace

int main() {
  io::MemVolume volume;
  log::LogStorage wal;
  sm::TableInfo accounts;

  {
    auto opened = sm::StorageManager::Open(
        sm::StorageOptions::ForStage(sm::Stage::kFinal), &volume, &wal);
    if (!opened.ok()) return 1;
    auto& db = *opened;

    auto* setup = db->Begin();
    auto table = db->CreateTable(setup, "accounts");
    if (!table.ok()) return 1;
    accounts = *table;
    for (uint64_t acct = 1; acct <= kAccounts; ++acct) {
      if (!db->Insert(setup, accounts, acct, BalanceBytes(kInitialBalance))
               .ok()) {
        return 1;
      }
    }
    if (!db->Commit(setup).ok()) return 1;
    std::printf("opened %d accounts with %lld each\n", kAccounts,
                static_cast<long long>(kInitialBalance));

    std::atomic<int> commits{0};
    std::atomic<int> retries{0};
    std::vector<std::thread> tellers;
    for (int t = 0; t < kTellers; ++t) {
      tellers.emplace_back([&, t] {
        Rng rng(7700 + t);
        for (int i = 0; i < kTransfersPerTeller; ++i) {
          uint64_t from = 1 + rng.Uniform(kAccounts);
          uint64_t to = 1 + rng.Uniform(kAccounts);
          if (from == to) continue;
          int64_t amount = 1 + static_cast<int64_t>(rng.Uniform(50));
          for (;;) {  // Retry deadlock victims.
            auto* txn = db->Begin();
            auto src = db->Read(txn, accounts, from);
            auto dst = db->Read(txn, accounts, to);
            bool ok = src.ok() && dst.ok();
            if (ok) {
              int64_t s = ToBalance(*src) - amount;
              int64_t d = ToBalance(*dst) + amount;
              ok = db->Update(txn, accounts, from, BalanceBytes(s)).ok() &&
                   db->Update(txn, accounts, to, BalanceBytes(d)).ok();
            }
            if (ok && db->Commit(txn).ok()) {
              commits.fetch_add(1);
              break;
            }
            (void)db->Abort(txn);
            retries.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : tellers) t.join();
    std::printf("transfers committed: %d (deadlock retries: %d)\n",
                commits.load(), retries.load());

    // Audit: money is conserved.
    auto* audit = db->Begin();
    int64_t total = 0;
    (void)db->Scan(audit, accounts, 0, UINT64_MAX,
                   [&](uint64_t, std::span<const uint8_t> bytes) {
                     int64_t v;
                     std::memcpy(&v, bytes.data(), sizeof(v));
                     total += v;
                     return true;
                   });
    (void)db->Commit(audit);
    std::printf("audit total: %lld (expected %lld) -> %s\n",
                static_cast<long long>(total),
                static_cast<long long>(int64_t{kAccounts} * kInitialBalance),
                total == int64_t{kAccounts} * kInitialBalance ? "OK"
                                                              : "BROKEN");

    // Simulate a power failure: nothing flushed beyond the WAL.
    db->SimulateCrash();
  }

  // Restart: ARIES recovery replays the committed transfers.
  auto reopened = sm::StorageManager::Open(
      sm::StorageOptions::ForStage(sm::Stage::kFinal), &volume, &wal);
  if (!reopened.ok()) return 1;
  auto& db = *reopened;
  auto table = db->OpenTable("accounts");
  auto* audit = db->Begin();
  int64_t total = 0;
  (void)db->Scan(audit, *table, 0, UINT64_MAX,
                 [&](uint64_t, std::span<const uint8_t> bytes) {
                   int64_t v;
                   std::memcpy(&v, bytes.data(), sizeof(v));
                   total += v;
                   return true;
                 });
  (void)db->Commit(audit);
  std::printf("after crash+recovery, audit total: %lld -> %s\n",
              static_cast<long long>(total),
              total == int64_t{kAccounts} * kInitialBalance ? "OK"
                                                            : "BROKEN");
  return total == int64_t{kAccounts} * kInitialBalance ? 0 : 1;
}
