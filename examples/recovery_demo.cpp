/// Recovery internals demo: watch ARIES analysis/redo/undo at work.
///
/// Writes a mix of committed and in-flight transactions, crashes without
/// flushing a single data page, then walks the write-ahead log record by
/// record before reopening the database and verifying the recovered state.

#include <cstdio>
#include <string>

#include "io/volume.h"
#include "log/log_manager.h"
#include "log/log_storage.h"
#include "sm/options.h"
#include "sm/session.h"
#include "sm/storage_manager.h"

using namespace shoremt;

namespace {

std::vector<uint8_t> Row(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

const char* TypeName(log::LogRecordType t) {
  using log::LogRecordType;
  switch (t) {
    case LogRecordType::kNoop: return "noop";
    case LogRecordType::kPageFormat: return "page_format";
    case LogRecordType::kPageInsert: return "page_insert";
    case LogRecordType::kPageUpdate: return "page_update";
    case LogRecordType::kPageDelete: return "page_delete";
    case LogRecordType::kAllocPage: return "alloc_page";
    case LogRecordType::kCreateStore: return "create_store";
    case LogRecordType::kCommit: return "COMMIT";
    case LogRecordType::kAbort: return "ABORT";
    case LogRecordType::kClr: return "CLR";
    case LogRecordType::kCheckpoint: return "CHECKPOINT";
    case LogRecordType::kBtreeInsert: return "btree_insert";
    case LogRecordType::kBtreeDelete: return "btree_delete";
    case LogRecordType::kBtreeSetContent: return "btree_set_content";
    case LogRecordType::kCatalog: return "catalog";
  }
  return "?";
}

}  // namespace

int main() {
  io::MemVolume volume;
  log::LogStorage wal;

  {
    auto opened = sm::StorageManager::Open(
        sm::StorageOptions::ForStage(sm::Stage::kFinal), &volume, &wal);
    if (!opened.ok()) return 1;
    auto& db = *opened;

    auto winner = db->OpenSession();
    (void)winner->Begin();
    auto table = winner->CreateTable("ledger");
    (void)winner->Insert(*table, 1, Row("committed-before-crash"));
    (void)winner->Commit();

    auto loser = db->OpenSession();
    (void)loser->Begin();
    (void)loser->Insert(*table, 2, Row("never-committed"));
    (void)loser->Update(*table, 1, Row("tampered"));
    // ... power fails mid-transaction: drop the handle without Abort so
    // the in-flight updates die with the crash, not via rollback.
    loser.release();  // NOLINT: deliberate leak, the "power cord" pull.
    db->SimulateCrash();
    std::printf("crashed with 1 committed txn and 1 in-flight txn\n\n");
  }

  // Inspect the surviving WAL: this is exactly what recovery analysis
  // sees. Note the loser's records have no commit.
  std::printf("durable WAL (%llu bytes):\n",
              static_cast<unsigned long long>(wal.size()));
  log::LogManager reader(&wal, log::LogOptions{});
  int shown = 0;
  (void)reader.Scan([&](const log::LogRecord& rec, Lsn end) {
    std::printf("  lsn %6llu  txn %2llu  %-17s page %llu\n",
                static_cast<unsigned long long>(rec.lsn.value),
                static_cast<unsigned long long>(rec.txn),
                TypeName(rec.type),
                static_cast<unsigned long long>(rec.page));
    ++shown;
    return Status::Ok();
  });
  std::printf("  (%d records)\n\n", shown);

  // Reopen: analysis finds the loser, redo replays history, undo rolls
  // the loser back (appending CLRs you could see by re-dumping the log).
  auto reopened = sm::StorageManager::Open(
      sm::StorageOptions::ForStage(sm::Stage::kFinal), &volume, &wal);
  if (!reopened.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  auto& db = *reopened;
  auto check = db->OpenSession();
  auto table = check->OpenTable("ledger");
  (void)check->Begin();
  auto key1 = check->Read(*table, 1);
  std::string key1_str =
      key1.ok() ? std::string(key1->begin(), key1->end()) : std::string();
  auto key2 = check->Read(*table, 2);
  std::printf("after recovery:\n");
  std::printf("  key 1 -> \"%s\" (expected the committed image)\n",
              key1.ok() ? key1_str.c_str()
                        : key1.status().ToString().c_str());
  std::printf("  key 2 -> %s (expected NotFound: loser rolled back)\n",
              key2.ok() ? "present (!)" : key2.status().ToString().c_str());
  (void)check->Commit();

  bool ok = key1.ok() && key1_str == "committed-before-crash" &&
            key2.status().IsNotFound();
  std::printf("\nrecovery verdict: %s\n", ok ? "OK" : "BROKEN");
  return ok ? 0 : 1;
}
